"""The transport layer: how message bytes move between processes.

The MPF *protocol* — LNVC naming, FCFS/BROADCAST delivery, the §3.2
retirement rule — is independent of how payload bytes physically travel
through the shared segment.  This module formalizes that split:

* :class:`FreelistTransport` — the paper's 1987 design: variable-length
  messages as chains of 10-byte blocks from one global free list, linked
  into a per-circuit FIFO.  Flexible, but every send crosses the global
  ``ALLOC_LOCK`` and the sender's critical section grows with the
  receiver count — the contention collapse of Figure 4 (§4).
* :class:`RingTransport` — the modern answer, after kzimp's "Memory
  Passing Sockets" (``mpsoc.h``): a per-circuit array of fixed-size
  cache-line-aligned slots, a monotone write index, per-reader cursors
  each on their own cache line, and a per-slot reader bitmap for
  BROADCAST completion.  No allocator, no list walks; a sender's
  critical section is a constant-size index claim.

The transport is chosen per circuit at creation time
(:attr:`~repro.core.layout.MPFConfig.transport` sets the default,
:attr:`~repro.core.layout.MPFConfig.transports` overrides by name) and
recorded in the LNVC's ``transport`` field; :mod:`repro.core.ops`
dispatches each hot primitive on that one u32.  Both transports speak
the same protocol: same primitives, same blocking semantics, same
retirement rule, same observability hooks.

Ring data layout (see also docs/transport.md)::

    RING control    | next_write | fcfs_next | reader_mask |  (1 line)
    RCUR cursor x32 | next_seq | nreads |                     (1 line each)
    slot k          | seq len seqno sender state busy |       (line 0)
                    | pending bitmap |                        (line 1)
                    | payload ... |                           (lines 2..)

A message claims index ``w = next_write++``, fills slot
``w % ring_slots`` and *commits* by storing ``w + 1`` into the slot's
``seq`` word, all in one circuit-lock section — the sender queues
behind its receivers exactly once per message, like the free-list
sender's single link step.  Readers recognise exactly
``seq == index + 1`` as "mine": a stale ``seq`` from an earlier lap can
never alias a fresh message, which is what makes slot reuse safe (the
``ring-wrap`` check scenario exercises this).  The real mpsoc claims
with one fetch-and-add and commits with one atomic store, no lock at
all; this portable reproduction serializes both through the circuit
lock and *models* the coherence cost of the lock-free original
(:attr:`~repro.core.costmodel.Costs.cacheline_xfer`).
"""

from __future__ import annotations

from typing import Generator, Iterable

from .effects import (
    D_BAIL,
    D_RESULT_SPLICE,
    S_CALL,
    S_CHARGE,
    S_MANY,
    Acquire,
    Charge,
    ChargeMany,
    Effect,
    FusedSection,
    Release,
    Wake,
)
from .errors import (
    BufferOverflowError,
    NotConnectedError,
    OutOfDescriptorsError,
    OutOfMessageMemoryError,
    UnknownLNVCError,
)
from .freelist import fl_alloc, fl_free
from .layout import HDR
from .protocol import FIRST_LNVC_LOCK, GLOBAL_LOCK, NIL, Protocol
from .structs import (
    CACHE_LINE,
    LNVC,
    RCUR,
    RECV,
    RING,
    RING_READERS,
    RSLOT,
    RSLOT_DATA_OFF,
    RSLOT_PENDING_OFF,
    RS_FCFS_AVAILABLE,
    RS_FCFS_TAKEN,
    RS_RETIRED,
    SEND,
)
from .work import Work

__all__ = [
    "FreelistTransport",
    "RingTransport",
    "TRANSPORTS",
    "ring_send",
    "ring_receive",
    "ring_check",
    "ring_attach",
    "ring_release",
    "ring_register_reader",
    "ring_unregister_reader",
]

OpGen = Generator[Effect, None, object]

# Constant-folded field offsets, as in ops.py: the ring primitives run
# once per message in figure sweeps.
_SLOT_BITS = 10
_SLOT_MASK = (1 << _SLOT_BITS) - 1

_L_IN_USE = LNVC.offsets["in_use"]
_L_GEN = LNVC.offsets["gen"]
_L_NMSGS = LNVC.offsets["nmsgs"]
_L_SEND_LIST = LNVC.offsets["send_list"]
_L_RECV_LIST = LNVC.offsets["recv_list"]
_L_N_FCFS = LNVC.offsets["n_fcfs"]
_L_N_BCAST = LNVC.offsets["n_bcast"]
_L_SEQ = LNVC.offsets["seq"]
_L_HWM_NMSGS = LNVC.offsets["hwm_nmsgs"]
_L_CONN_EPOCH = LNVC.offsets["conn_epoch"]
_L_RING = LNVC.offsets["ring"]

_S_PID = SEND.offsets["pid"]
_S_NEXT = SEND.offsets["next"]
_R_PID = RECV.offsets["pid"]
_R_PROTO = RECV.offsets["proto"]
_R_HEAD = RECV.offsets["head"]
_R_NEXT = RECV.offsets["next"]
_R_NREADS = RECV.offsets["nreads"]

_RG_NEXT_WRITE = RING.offsets["next_write"]
_RG_FCFS_NEXT = RING.offsets["fcfs_next"]
_RG_READER_MASK = RING.offsets["reader_mask"]

_RS_SEQ = RSLOT.offsets["seq"]
_RS_LENGTH = RSLOT.offsets["length"]
_RS_SEQNO = RSLOT.offsets["seqno"]
_RS_SENDER = RSLOT.offsets["sender"]
_RS_STATE = RSLOT.offsets["state"]
_RS_BUSY = RSLOT.offsets["busy"]

_RC_NEXT_SEQ = RCUR.offsets["next_seq"]
_RC_NREADS = RCUR.offsets["nreads"]

_H_FREE_RING = HDR.u32["free_ring"]
_H_TOTAL_SENDS = HDR.u64["total_sends"]
_H_TOTAL_RECEIVES = HDR.u64["total_receives"]
_H_TOTAL_BYTES_SENT = HDR.u64["total_bytes_sent"]
_H_TOTAL_BYTES_RECEIVED = HDR.u64["total_bytes_received"]

_P_FCFS = int(Protocol.FCFS)


class FreelistTransport:
    """The paper's block-chain transport (implemented in ops.py).

    Variable-length payloads, one global block pool, per-circuit linked
    FIFO.  Its contention profile: every send and every reap crosses
    ``ALLOC_LOCK``, and the sender walks the receiver list under the
    circuit lock, so critical sections grow with fan-out.
    """

    kind = "freelist"
    #: LNVC ``transport`` field value.
    tag = 0


class RingTransport:
    """The mpsoc-style fixed-slot ring transport (this module).

    Bounded payloads (``ring_slot_bytes``), no shared allocator,
    constant-size critical sections.  A full ring blocks senders until a
    slot retires — backpressure instead of the free-list transport's
    pool-exhaustion error.
    """

    kind = "ring"
    tag = 1


#: Transport registry, keyed by the config's ``transport`` strings.
TRANSPORTS = {t.kind: t for t in (FreelistTransport, RingTransport)}


# ---------------------------------------------------------------------------
# helpers (mirrors of the ops.py helpers; ops imports this module, so
# these are redeclared here rather than imported)
# ---------------------------------------------------------------------------


def _release_and_raise(locks: Iterable[int], exc: Exception) -> OpGen:
    for lock in locks:
        yield Release(lock)
    raise exc


def _find_send(view, base: int, pid: int) -> tuple[int, int]:
    """Locate ``pid``'s send descriptor: ``(desc_off|NIL, steps)``."""
    u32 = view.region.u32
    off, steps = u32(base + _L_SEND_LIST), 0
    while off != NIL:
        steps += 1
        if u32(off + _S_PID) == pid:
            return off, steps
        off = u32(off + _S_NEXT)
    return NIL, steps


def _find_recv(view, base: int, pid: int) -> tuple[int, int]:
    """Locate ``pid``'s receive descriptor: ``(desc_off|NIL, steps)``."""
    u32 = view.region.u32
    off, steps = u32(base + _L_RECV_LIST), 0
    while off != NIL:
        steps += 1
        if u32(off + _R_PID) == pid:
            return off, steps
        off = u32(off + _R_NEXT)
    return NIL, steps


def _lines(length: int) -> int:
    """Cache lines one message touches: header + bitmap + payload."""
    return 2 + (length + CACHE_LINE - 1) // CACHE_LINE


def ring_retire_check(view, base: int, sl: int) -> bool:
    """Apply the retirement rule to the slot at ``sl``; True if it
    retires (now or earlier).

    Mirrors ops._retire_check: a slot retires when its pending reader
    bitmap is empty, nobody is copying out of it, and its FCFS
    obligation is discharged.  ``RS_FCFS_AVAILABLE`` covers both the
    "an FCFS receiver must take this" case and the "no receivers at
    enqueue — hold for a future FCFS joiner" case (paper §3.2).
    Caller holds the circuit lock.
    """
    r = view.region
    st = r.u32(sl + _RS_STATE)
    if st & RS_RETIRED:
        return True
    if r.u32(sl + RSLOT_PENDING_OFF) or r.u32(sl + _RS_BUSY):
        return False
    if (st & RS_FCFS_AVAILABLE) and not (st & RS_FCFS_TAKEN):
        return False
    r.set_u32(sl + _RS_STATE, st | RS_RETIRED)
    r.add_u32(base + _L_NMSGS, -1)
    return True


# ---------------------------------------------------------------------------
# circuit lifecycle hooks (called from ops open/close/delete paths)
# ---------------------------------------------------------------------------


def ring_attach(view, slot: int, base: int) -> OpGen:
    """Bind a freshly created circuit to a ring from the pool.

    Caller holds the global lock (open path).  Allocates the control
    block under ``ALLOC_LOCK``, resets it, and zeroes the slot headers
    and cursors of a possible previous tenant.
    """
    r = view.region
    lay = view.layout
    cfg = view.cfg
    yield view._alloc_acq
    ring = fl_alloc(r, _H_FREE_RING)
    yield view._alloc_rel
    if ring == NIL:
        # Roll the just-created circuit back before raising: no public
        # identifier has escaped yet, so resetting in_use suffices.
        LNVC.set(r, base, "in_use", 0)
        HDR.add(r, "live_lnvcs", -1)
        yield from _release_and_raise(
            [GLOBAL_LOCK], OutOfMessageMemoryError("ring pool exhausted")
        )
    r.fill(ring, RING.size, 0)
    ridx = lay.ring_index(ring)
    r.fill(lay.ring_cur_off(ridx, 0), RING_READERS * RCUR.size, 0)
    for i in range(cfg.ring_slots):
        RSLOT.clear(r, lay.ring_slot_off(ridx, i))
        r.set_u32(lay.ring_slot_off(ridx, i) + RSLOT_PENDING_OFF, 0)
    LNVC.set(r, base, "transport", RingTransport.tag)
    LNVC.set(r, base, "ring", ring)
    HDR.add(r, "live_rings", 1)
    yield Charge(
        Work(
            instrs=view.costs.open_fixed // 2,
            page_bytes=cfg.ring_slots * lay.ring_stride,
            label="ring-setup",
        )
    )
    return ring


def ring_release(view, base: int) -> OpGen:
    """Return a deleted circuit's ring to the pool (caller holds the
    global and circuit locks; called before the LNVC record is cleared)."""
    r = view.region
    ring = r.u32(base + _L_RING)
    yield view._alloc_acq
    fl_free(r, _H_FREE_RING, ring)
    yield view._alloc_rel
    HDR.add(r, "live_rings", -1)
    return None


def ring_register_reader(view, base: int, desc: int) -> None:
    """Assign a BROADCAST reader its bitmap index and tail cursor.

    Caller holds the circuit lock (open_receive path).  The bit index is
    stored in the descriptor's ``head`` field — unused on ring circuits,
    where per-reader progress lives in the RCUR cursor instead.  Raises
    when all :data:`RING_READERS` indexes are taken.
    """
    r = view.region
    ring = r.u32(base + _L_RING)
    mask = r.u32(ring + _RG_READER_MASK)
    bit = 0
    while bit < RING_READERS and mask & (1 << bit):
        bit += 1
    if bit == RING_READERS:
        raise OutOfDescriptorsError(
            f"ring circuit already has {RING_READERS} BROADCAST readers"
        )
    r.set_u32(ring + _RG_READER_MASK, mask | (1 << bit))
    RECV.set(r, desc, "head", bit)
    ridx = view.layout.ring_index(ring)
    cur = view.layout.ring_cur_off(ridx, bit)
    # Join at the tail: hear only messages claimed after this point.
    r.set_u32(cur + _RC_NEXT_SEQ, r.u32(ring + _RG_NEXT_WRITE))
    r.set_u32(cur + _RC_NREADS, 0)


def ring_unregister_reader(view, base: int, desc: int) -> bool:
    """Remove a closing BROADCAST reader: drop its mask bit and shed its
    pending bit from every committed live slot (the ring analogue of the
    free-list close_receive walk).  Returns True if any slot retired —
    the caller must wake the circuit's channel after releasing, since a
    sender blocked on a full ring may now proceed.

    Claimed-but-uncommitted slots cannot exist here: a sender claims,
    fills and commits inside one circuit-lock section, and this runs
    under the same lock.  Caller holds the circuit lock.
    """
    r = view.region
    u32 = r.u32
    lay = view.layout
    nslots = view.cfg.ring_slots
    ring = u32(base + _L_RING)
    bit = RECV.get(r, desc, "head")
    r.set_u32(ring + _RG_READER_MASK, u32(ring + _RG_READER_MASK) & ~(1 << bit))
    retired = False
    w = u32(ring + _RG_NEXT_WRITE)
    idx = w - nslots if w > nslots else 0
    while idx < w:
        sl = lay.ring_slot_off(lay.ring_index(ring), idx % nslots)
        idx += 1
        if u32(sl + _RS_SEQ) != idx:  # uncommitted, or an older lap
            continue
        if u32(sl + _RS_STATE) & RS_RETIRED:
            continue
        pend = u32(sl + RSLOT_PENDING_OFF)
        if pend & (1 << bit):
            r.set_u32(sl + RSLOT_PENDING_OFF, pend & ~(1 << bit))
            if ring_retire_check(view, base, sl):
                retired = True
    return retired


# ---------------------------------------------------------------------------
# hot primitives (dispatched to from ops.message_send / message_receive /
# check_receive when the circuit's transport field says "ring")
# ---------------------------------------------------------------------------


def ring_send(view, pid: int, lnvc_id: int, data: bytes,
              prelude: Work | None = None) -> OpGen:
    """message_send over the ring transport.

    Claim an index, fill the slot and store the commit word in ONE
    circuit-lock section, then wake.  A single section matters: the
    sender queues behind the receiver herd's lock sections once per
    message — exactly as often as the free-list sender queues for its
    link step — so it can run ahead and build a backlog instead of
    lock-stepping with its readers.  (Holding the lock across the fill
    also makes the pending snapshot exact: no reader can register or
    close mid-fill.)  Blocks (WaitOn) when the ring is full —
    backpressure where the free-list transport raises
    ``OutOfMessageMemoryError``.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError("message payload must be bytes-like")
    data = bytes(data)
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    c = view.costs
    lay = view.layout
    cfg = view.cfg
    length = len(data)
    if length > cfg.ring_slot_bytes:
        raise BufferOverflowError(
            f"{length}-byte message exceeds ring slot capacity "
            f"of {cfg.ring_slot_bytes} bytes"
        )
    causal = view.causal
    t_entry = causal.clock() if causal is not None else 0.0
    if prelude is None:
        yield view._ring_send_fixed
    else:
        yield ChargeMany((prelude, view._ring_send_fixed_work))

    slot = lnvc_id & _SLOT_MASK
    gen = lnvc_id >> _SLOT_BITS
    in_table = slot < cfg.max_lnvcs
    lock = FIRST_LNVC_LOCK + slot if in_table else GLOBAL_LOCK
    yield view._acq[slot] if in_table else Acquire(lock)
    try:
        base = lay.lnvc_off(slot)
        if (
            not in_table
            or not u32(base + _L_IN_USE)
            or u32(base + _L_GEN) != gen
        ):
            view.resolve(lnvc_id)  # raises with the precise message
        epoch = u32(base + _L_CONN_EPOCH)
        hit = view._send_cache.get((slot, pid))
        if hit is not None and hit[2] == gen and hit[3] == epoch:
            steps = hit[1]
        else:
            sd, steps = _find_send(view, base, pid)
            if sd == NIL:
                raise NotConnectedError(
                    f"pid {pid} holds no send connection here"
                )
            view._send_cache[(slot, pid)] = (sd, steps, gen, epoch)
    except (UnknownLNVCError, NotConnectedError) as exc:
        yield from _release_and_raise([lock], exc)

    ring = u32(base + _L_RING)
    ridx = lay.ring_index(ring)
    nslots = cfg.ring_slots
    # Claim: wait until the target slot's previous tenant has retired.
    while True:
        w = u32(ring + _RG_NEXT_WRITE)
        sl = lay.ring_slot_off(ridx, w % nslots)
        if u32(sl + _RS_SEQ) == 0 or u32(sl + _RS_STATE) & RS_RETIRED:
            break
        yield view._waiton[slot]
        yield view._recv_wakeup
    set_u32(ring + _RG_NEXT_WRITE, w + 1)
    pending = u32(ring + _RG_READER_MASK)
    n_fcfs = u32(base + _L_N_FCFS)
    # Receivers-at-enqueue snapshot, as in the free-list transport: an
    # FCFS obligation when FCFS receivers exist, and a hold-for-future-
    # joiner obligation when no receiver of either kind exists.
    if n_fcfs or not (pending or u32(base + _L_N_BCAST)):
        state = RS_FCFS_AVAILABLE
    else:
        state = 0
    seqno = u32(base + _L_SEQ)
    set_u32(base + _L_SEQ, seqno + 1)
    depth = r.add_u32(base + _L_NMSGS, 1)
    if depth > u32(base + _L_HWM_NMSGS):
        set_u32(base + _L_HWM_NMSGS, depth)
    r.add_u64(_H_TOTAL_SENDS, 1)
    r.add_u64(_H_TOTAL_BYTES_SENT, length)
    yield view._ring_claim
    t_claim = causal.clock() if causal is not None else 0.0

    # Fill — still under the lock, so the pending snapshot above stays
    # exact (nobody can open or close a receive connection mid-fill).
    set_u32(sl + _RS_LENGTH, length)
    set_u32(sl + _RS_SEQNO, seqno)
    set_u32(sl + _RS_SENDER, pid)
    set_u32(sl + _RS_STATE, state)
    set_u32(sl + _RS_BUSY, 0)
    set_u32(sl + RSLOT_PENDING_OFF, pending)
    r.write(sl + RSLOT_DATA_OFF, data)
    yield Charge(
        Work(
            instrs=length * c.copy_byte + _lines(length) * c.cacheline_xfer
            + steps * c.list_step,
            copy_bytes=length,
            page_bytes=lay.ring_stride,
            label="ring-fill",
        )
    )
    t_fill = causal.clock() if causal is not None else 0.0

    # Commit: store the commit word, retire degenerate messages whose
    # audience is empty, release the single lock section.
    set_u32(sl + _RS_SEQ, w + 1)
    ring_retire_check(view, base, sl)
    yield view._ring_commit
    yield view._rel[slot] if in_table else Release(lock)
    if causal is not None:
        causal.on_send(pid, slot, gen, seqno, length, _lines(length), depth,
                       t_entry, t_claim, t_fill)
    tl = view.timeline
    if tl is not None:
        tl.tap_send(slot, length, depth)
        tl.tap_ring(slot, depth)
    yield view._wake[slot] if in_table else Wake(slot)
    return seqno


def ring_receive(view, pid: int, lnvc_id: int,
                 max_len: int | None = None) -> OpGen:
    """message_receive over the ring transport.

    A BROADCAST reader takes committed slots on a *lock-free* fast
    path — the mpsoc read side.  Its cursor is private (one cache line,
    written only by this reader), the commit word ``seq == index + 1``
    is self-validating, and its pending bit already pins the slot
    against retirement until the completion section clears it, so
    observing and claiming a committed message needs no lock at all.
    The circuit lock is taken only to park race-free when the cursor
    has caught up with the sender (check-then-WaitOn under the lock, so
    the sender's commit+wake cannot be lost) and for the completion
    section.

    An FCFS reader always goes through the lock: it advances the
    *shared* ``fcfs_next`` cursor over committed slots, skipping those
    with no FCFS obligation, and pins its slot with the ``busy`` count
    while copying (its claim leaves no pending bit to protect it).

    Either way the payload copy runs outside the circuit lock, exactly
    as in the free-list transport.
    """
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    c = view.costs
    lay = view.layout
    causal = view.causal
    t_entry = causal.clock() if causal is not None else 0.0
    yield view._ring_recv_fixed
    slot = lnvc_id & _SLOT_MASK
    gen = lnvc_id >> _SLOT_BITS
    in_table = slot < view.cfg.max_lnvcs
    lock = FIRST_LNVC_LOCK + slot if in_table else GLOBAL_LOCK
    base = lay.lnvc_off(slot)
    nslots = view.cfg.ring_slots

    # -- lock-free BROADCAST fast path -----------------------------------
    # Valid only on a connection-cache hit: our own receive connection
    # being open is what forbids circuit deletion and generation reuse,
    # and the epoch check proves the cached descriptor offset is what a
    # fresh (locked) walk would find.  Reads here follow the seqlock
    # discipline: the sender publishes the commit word *last*, so any
    # slot whose ``seq`` matches our cursor is fully filled.
    is_fcfs = True
    taken = NIL
    hit = view._recv_cache.get((slot, pid)) if in_table else None
    if (
        hit is not None
        and hit[2] == gen
        and u32(base + _L_IN_USE)
        and u32(base + _L_GEN) == gen
        and hit[3] == u32(base + _L_CONN_EPOCH)
    ):
        desc = hit[0]
        if u32(desc + _R_PROTO) != _P_FCFS:
            is_fcfs = False
            ring = u32(base + _L_RING)
            ridx = lay.ring_index(ring)
            bit = u32(desc + _R_HEAD)
            cur = lay.ring_cur_off(ridx, bit)
            cseq = u32(cur + _RC_NEXT_SEQ)
            sl = lay.ring_slot_off(ridx, cseq % nslots)
            if u32(sl + _RS_SEQ) == cseq + 1:
                length = u32(sl + _RS_LENGTH)
                if max_len is not None and length > max_len:
                    raise BufferOverflowError(
                        f"next message is {length} bytes, "
                        f"buffer holds {max_len}"
                    )
                set_u32(cur + _RC_NEXT_SEQ, cseq + 1)
                r.add_u32(cur + _RC_NREADS, 1)
                r.add_u32(desc + _R_NREADS, 1)
                taken = sl

    if taken != NIL:
        yield view._ring_cursor
        t_claim = causal.clock() if causal is not None else 0.0
    else:
        yield view._acq[slot] if in_table else Acquire(lock)
        if (
            not in_table
            or not u32(base + _L_IN_USE)
            or u32(base + _L_GEN) != gen
        ):
            try:
                view.resolve(lnvc_id)
            except UnknownLNVCError as exc:
                yield from _release_and_raise([lock], exc)
        epoch = u32(base + _L_CONN_EPOCH)
        hit = view._recv_cache.get((slot, pid))
        if hit is not None and hit[2] == gen and hit[3] == epoch:
            desc = hit[0]
            steps = hit[1]
        else:
            desc, steps = _find_recv(view, base, pid)
            if desc == NIL:
                yield from _release_and_raise(
                    [lock],
                    NotConnectedError(
                        f"pid {pid} holds no receive connection here"
                    ),
                )
            view._recv_cache[(slot, pid)] = (desc, steps, gen, epoch)
        is_fcfs = u32(desc + _R_PROTO) == _P_FCFS
        yield view._recv_find[steps] if steps < 8 else Charge(
            Work(instrs=steps * c.list_step, label="recv-find")
        )

        ring = u32(base + _L_RING)
        ridx = lay.ring_index(ring)
        if is_fcfs:
            # Scan the shared cursor forward over committed slots; stop
            # at the first FCFS-available one, park at the first
            # uncommitted index (commits happen in claim order per slot,
            # but a later index may commit before an earlier one — FCFS
            # order waits).
            while True:
                f = u32(ring + _RG_FCFS_NEXT)
                w = u32(ring + _RG_NEXT_WRITE)
                sl = NIL
                while f < w:
                    s = lay.ring_slot_off(ridx, f % nslots)
                    if u32(s + _RS_SEQ) != f + 1:
                        break
                    st = u32(s + _RS_STATE)
                    if st & RS_FCFS_AVAILABLE and not st & (
                        RS_FCFS_TAKEN | RS_RETIRED
                    ):
                        sl = s
                        break
                    f += 1
                set_u32(ring + _RG_FCFS_NEXT, f)
                if sl != NIL:
                    break
                yield view._waiton[slot]
                yield view._recv_wakeup
            length = u32(sl + _RS_LENGTH)
            if max_len is not None and length > max_len:
                yield from _release_and_raise(
                    [lock],
                    BufferOverflowError(
                        f"next message is {length} bytes, "
                        f"buffer holds {max_len}"
                    ),
                )
            set_u32(sl + _RS_STATE, u32(sl + _RS_STATE) | RS_FCFS_TAKEN)
            set_u32(ring + _RG_FCFS_NEXT, f + 1)
            # Pin against retirement while we copy outside the lock: an
            # FCFS claim clears no pending bit, so ``busy`` is its pin.
            r.add_u32(sl + _RS_BUSY, 1)
            yield view._ring_claim
        else:
            bit = u32(desc + _R_HEAD)
            cur = lay.ring_cur_off(ridx, bit)
            while True:
                cseq = u32(cur + _RC_NEXT_SEQ)
                sl = lay.ring_slot_off(ridx, cseq % nslots)
                if u32(sl + _RS_SEQ) == cseq + 1:
                    break
                yield view._waiton[slot]
                yield view._recv_wakeup
            length = u32(sl + _RS_LENGTH)
            if max_len is not None and length > max_len:
                yield from _release_and_raise(
                    [lock],
                    BufferOverflowError(
                        f"next message is {length} bytes, "
                        f"buffer holds {max_len}"
                    ),
                )
            set_u32(cur + _RC_NEXT_SEQ, cseq + 1)
            r.add_u32(cur + _RC_NREADS, 1)
            yield view._ring_cursor
        r.add_u32(desc + _R_NREADS, 1)
        t_claim = causal.clock() if causal is not None else 0.0
        yield view._rel[slot] if in_table else Release(lock)
    seqno = u32(sl + _RS_SEQNO)

    # Copy phase — concurrent with other readers of the same slot.
    payload = r.read(sl + RSLOT_DATA_OFF, length)
    yield Charge(
        Work(
            instrs=length * c.copy_byte + _lines(length) * c.cacheline_xfer,
            copy_bytes=length,
            label="ring-copy",
        )
    )
    t_drain = causal.clock() if causal is not None else 0.0

    # Completion: drop the pin (busy for FCFS, our pending bit for
    # BROADCAST), retire.
    yield view._acq[slot] if in_table else Acquire(lock)
    if is_fcfs:
        r.add_u32(sl + _RS_BUSY, -1)
    else:
        pend = u32(sl + RSLOT_PENDING_OFF)
        set_u32(sl + RSLOT_PENDING_OFF, pend & ~(1 << bit))
    retired = ring_retire_check(view, base, sl)
    # A blocked sender always parks on slot ``next_write % nslots`` (it
    # waits *before* claiming), so a retire elsewhere in the ring cannot
    # unblock anyone: waking only on a match spares the receiver herd a
    # futile wakeup per message.
    wake_sender = retired and (
        (u32(sl + _RS_SEQ) - 1) % nslots
        == u32(ring + _RG_NEXT_WRITE) % nslots
    )
    yield view._ring_consume
    r.add_u64(_H_TOTAL_RECEIVES, 1)
    r.add_u64(_H_TOTAL_BYTES_RECEIVED, length)
    yield view._rel[slot] if in_table else Release(lock)
    if wake_sender:
        yield view._wake[slot] if in_table else Wake(slot)
    if causal is not None:
        causal.on_recv(pid, slot, gen, seqno, length, is_fcfs,
                       t_entry, t_claim, t_drain)
    tl = view.timeline
    if tl is not None:
        tl.tap_recv(slot, length)
        tl.tap_ring(slot, u32(base + _L_NMSGS))
    return payload


def _count_ready(view, lay, u32, base: int, desc: int, nslots: int) -> int:
    """Deliverable-message count for ``desc`` on the slot's ring — the
    walk :func:`ring_check` charges for (shared by both step modes)."""
    ring = u32(base + _L_RING)
    ridx = lay.ring_index(ring)
    count = 0
    if u32(desc + _R_PROTO) == _P_FCFS:
        f = u32(ring + _RG_FCFS_NEXT)
        w = u32(ring + _RG_NEXT_WRITE)
        while f < w:
            s = lay.ring_slot_off(ridx, f % nslots)
            if u32(s + _RS_SEQ) != f + 1:
                break
            st = u32(s + _RS_STATE)
            if st & RS_FCFS_AVAILABLE and not st & (RS_FCFS_TAKEN | RS_RETIRED):
                count += 1
            f += 1
    else:
        cseq = u32(desc + _R_HEAD)  # reader bit
        cur = lay.ring_cur_off(ridx, cseq)
        cseq = u32(cur + _RC_NEXT_SEQ)
        while u32(lay.ring_slot_off(ridx, cseq % nslots) + _RS_SEQ) == cseq + 1:
            count += 1
            cseq += 1
    return count


def _make_ring_check_section(view, slot, pid, gen, lnvc_id):
    """Build a :func:`ring_check` fused-section cache entry.

    Same entry shape as ``ops._make_check_section`` — ``[gen,
    walk_closure, section, prelude_obj, prelude_section]`` — and stored
    in the same ``view._fs_check_cache`` (a (slot, gen) pair has exactly
    one transport, so the generation check that invalidates stale
    entries also routes rebuilds to the right factory).
    """
    r = view.region
    u32 = r.u32
    c = view.costs
    lay = view.layout
    base = lay.lnvc_off(slot)
    recv_cache = view._recv_cache
    rkey = (slot, pid)
    fs_walk = view._fs_check_walk
    fs_rel = view._fs_rel[slot]
    nslots = view.cfg.ring_slots

    def _walk():
        if not u32(base + _L_IN_USE) or u32(base + _L_GEN) != gen:
            try:
                view.resolve(lnvc_id)  # raises with the precise message
            except UnknownLNVCError as exc:
                return (D_BAIL, exc)
        epoch = u32(base + _L_CONN_EPOCH)
        hit = recv_cache.get(rkey)
        if hit is not None and hit[2] == gen and hit[3] == epoch:
            desc = hit[0]
            steps = hit[1]
        else:
            desc, steps = _find_recv(view, base, pid)
            if desc == NIL:
                return (D_BAIL, NotConnectedError(
                    f"pid {pid} holds no receive connection here"))
            recv_cache[rkey] = (desc, steps, gen, epoch)
        count = _count_ready(view, lay, u32, base, desc, nslots)
        walked = steps + count
        wstep = fs_walk[walked] if walked < 8 else (
            S_CHARGE, Work(instrs=walked * c.list_step, label="check-walk"))
        return (D_RESULT_SPLICE, count, (wstep, fs_rel))

    section = FusedSection(
        (view._fs_check_fixed, view._fs_acq[slot], (S_CALL, _walk))
    )
    # Warm the epoch batcher's horizon memo with the cached section.
    section.contention_horizon()
    return [gen, _walk, section, None, None]


def ring_check(view, pid: int, lnvc_id: int,
               prelude: Work | None = None) -> OpGen:
    """check_receive over the ring transport (advisory, as ever for FCFS)."""
    r = view.region
    u32 = r.u32
    c = view.costs
    lay = view.layout
    slot = lnvc_id & _SLOT_MASK
    gen = lnvc_id >> _SLOT_BITS
    in_table = slot < view.cfg.max_lnvcs
    lock = FIRST_LNVC_LOCK + slot if in_table else GLOBAL_LOCK

    if view.fuse and in_table:
        # Fused fast path, the ring twin of ops.check_receive's: entry
        # charge, acquire, then the validate/walk/charge/release tail as
        # one effect, with cached per-connection closures.
        ckey = (slot, pid)
        ent = view._fs_check_cache.get(ckey)
        if ent is None or ent[0] != gen:
            ent = _make_ring_check_section(view, slot, pid, gen, lnvc_id)
            view._fs_check_cache[ckey] = ent
        if prelude is None:
            section = ent[2]
        elif prelude is ent[3]:
            section = ent[4]
        else:
            section = FusedSection(((S_MANY, (prelude, view._check_fixed_work)),
                                    view._fs_acq[slot], (S_CALL, ent[1])))
            section.contention_horizon()
            ent[3] = prelude
            ent[4] = section
        res = yield section
        if res.__class__ is int:
            return res
        yield from _release_and_raise([lock], res)

    if prelude is None:
        yield view._check_fixed
    else:
        yield ChargeMany((prelude, view._check_fixed_work))
    yield view._acq[slot] if in_table else Acquire(lock)
    base = lay.lnvc_off(slot)
    if (
        not in_table
        or not u32(base + _L_IN_USE)
        or u32(base + _L_GEN) != gen
    ):
        try:
            view.resolve(lnvc_id)
        except UnknownLNVCError as exc:
            yield from _release_and_raise([lock], exc)
    epoch = u32(base + _L_CONN_EPOCH)
    hit = view._recv_cache.get((slot, pid))
    if hit is not None and hit[2] == gen and hit[3] == epoch:
        desc = hit[0]
        steps = hit[1]
    else:
        desc, steps = _find_recv(view, base, pid)
        if desc == NIL:
            yield from _release_and_raise(
                [lock],
                NotConnectedError(f"pid {pid} holds no receive connection here"),
            )
        view._recv_cache[(slot, pid)] = (desc, steps, gen, epoch)
    count = _count_ready(view, lay, u32, base, desc, view.cfg.ring_slots)
    walked = steps + count
    yield view._check_walk[walked] if walked < 8 else Charge(
        Work(instrs=walked * c.list_step, label="check-walk")
    )
    yield view._rel[slot] if in_table else Release(lock)
    return count
