"""Segment inspection: structured dumps of live MPF state.

A deployed MPF application (threads, forked processes, or independent
processes attached to a named segment) sometimes needs to answer "what
is in there right now?" — which conversations exist, who is connected,
how deep the queues are, how much of each pool is left.  This module
walks the shared structures read-only and reports.

Consistency caveat: the walk takes no locks (it must be usable from a
diagnostic process that does not participate in the protocol), so on a
*running* system the snapshot can be torn, exactly as a debugger's view
of the paper's C structures would be.  On a quiescent segment it is
exact; tests use it that way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .freelist import fl_count
from .layout import HDR
from .ops import MPFView, encode_lnvc_id
from .protocol import NIL, MsgFlags, Protocol
from .structs import (
    LNVC,
    MSG,
    RCUR,
    RECV,
    RING,
    RING_READERS,
    RSLOT,
    RSLOT_PENDING_OFF,
    RS_FCFS_AVAILABLE,
    RS_FCFS_TAKEN,
    RS_RETIRED,
    SEND,
)

__all__ = ["MessageInfo", "ConnectionInfo", "CircuitInfo", "SegmentInfo",
           "inspect_segment", "render_segment",
           "InvariantViolation", "collect_violations", "check_invariants"]


@dataclass(frozen=True)
class MessageInfo:
    """One queued message."""

    seqno: int
    length: int
    nblocks: int
    sender: int
    flags: MsgFlags
    bcast_pending: int


@dataclass(frozen=True)
class ConnectionInfo:
    """One send or receive connection."""

    pid: int
    kind: str               # "send" | "recv"
    protocol: Protocol | None  # receive connections only
    reads: int = 0
    #: Messages this BROADCAST receiver has not yet read (None for FCFS).
    backlog: int | None = None


@dataclass(frozen=True)
class CircuitInfo:
    """One live LNVC."""

    lnvc_id: int
    name: str
    n_senders: int
    n_fcfs: int
    n_bcast: int
    queued: int
    total_enqueued: int
    #: Deepest the FIFO has ever been (the Figure 6 memory-pressure signal).
    peak_queued: int
    messages: list[MessageInfo] = field(default_factory=list)
    connections: list[ConnectionInfo] = field(default_factory=list)
    #: Which transport carries this circuit's payloads.
    transport: str = "freelist"


@dataclass(frozen=True)
class SegmentInfo:
    """The whole segment."""

    circuits: list[CircuitInfo]
    live_msgs: int
    live_blocks: int
    live_bytes: int
    free_send: int
    free_recv: int
    free_msg: int
    free_blk: int
    total_sends: int
    total_receives: int

    def circuit(self, name: str) -> CircuitInfo:
        """The circuit called ``name`` (raises ``KeyError`` if absent)."""
        for c in self.circuits:
            if c.name == name:
                return c
        raise KeyError(name)


def _walk_messages(view: MPFView, base: int) -> list[MessageInfo]:
    r = view.region
    out = []
    msg = LNVC.get(r, base, "fifo_head")
    while msg != NIL:
        out.append(
            MessageInfo(
                seqno=MSG.get(r, msg, "seqno"),
                length=MSG.get(r, msg, "length"),
                nblocks=MSG.get(r, msg, "nblocks"),
                sender=MSG.get(r, msg, "sender"),
                flags=MsgFlags(MSG.get(r, msg, "flags")),
                bcast_pending=MSG.get(r, msg, "bcast_pending"),
            )
        )
        msg = MSG.get(r, msg, "next_msg")
    return out


def _ring_live_slots(view: MPFView, base: int) -> list[tuple[int, int]]:
    """Committed, unretired ``(index, slot_off)`` pairs of a ring circuit,
    oldest first."""
    r = view.region
    lay = view.layout
    nslots = view.cfg.ring_slots
    ring = LNVC.get(r, base, "ring")
    ridx = lay.ring_index(ring)
    w = RING.get(r, ring, "next_write")
    out = []
    for idx in range(w - nslots if w > nslots else 0, w):
        sl = lay.ring_slot_off(ridx, idx % nslots)
        if RSLOT.get(r, sl, "seq") != idx + 1:
            continue
        if RSLOT.get(r, sl, "state") & RS_RETIRED:
            continue
        out.append((idx, sl))
    return out


def _walk_ring_messages(view: MPFView, base: int) -> list[MessageInfo]:
    r = view.region
    out = []
    for _, sl in _ring_live_slots(view, base):
        st = RSLOT.get(r, sl, "state")
        flags = MsgFlags.NONE
        if st & RS_FCFS_AVAILABLE:
            flags |= MsgFlags.FCFS_EXPECTED
        if st & RS_FCFS_TAKEN:
            flags |= MsgFlags.FCFS_TAKEN
        out.append(
            MessageInfo(
                seqno=RSLOT.get(r, sl, "seqno"),
                length=RSLOT.get(r, sl, "length"),
                nblocks=0,
                sender=RSLOT.get(r, sl, "sender"),
                flags=flags,
                bcast_pending=r.u32(sl + RSLOT_PENDING_OFF).bit_count(),
            )
        )
    return out


def _walk_connections(view: MPFView, base: int) -> list[ConnectionInfo]:
    r = view.region
    is_ring = bool(LNVC.get(r, base, "transport"))
    out = []
    desc = LNVC.get(r, base, "send_list")
    while desc != NIL:
        out.append(ConnectionInfo(pid=SEND.get(r, desc, "pid"), kind="send",
                                  protocol=None))
        desc = SEND.get(r, desc, "next")
    desc = LNVC.get(r, base, "recv_list")
    while desc != NIL:
        proto = Protocol(RECV.get(r, desc, "proto"))
        backlog = None
        if proto is Protocol.BROADCAST:
            if is_ring:
                ring = LNVC.get(r, base, "ring")
                cur = view.layout.ring_cur_off(
                    view.layout.ring_index(ring), RECV.get(r, desc, "head")
                )
                backlog = RING.get(r, ring, "next_write") - RCUR.get(
                    r, cur, "next_seq"
                )
            else:
                backlog = 0
                msg = RECV.get(r, desc, "head")
                while msg != NIL:
                    backlog += 1
                    msg = MSG.get(r, msg, "next_msg")
        out.append(
            ConnectionInfo(
                pid=RECV.get(r, desc, "pid"),
                kind="recv",
                protocol=proto,
                reads=RECV.get(r, desc, "nreads"),
                backlog=backlog,
            )
        )
        desc = RECV.get(r, desc, "next")
    return out


def inspect_segment(view: MPFView) -> SegmentInfo:
    """Walk the segment read-only and return its structured state."""
    r = view.region
    circuits = []
    for slot in range(view.cfg.max_lnvcs):
        base = view.layout.lnvc_off(slot)
        if not LNVC.get(r, base, "in_use"):
            continue
        is_ring = bool(LNVC.get(r, base, "transport"))
        circuits.append(
            CircuitInfo(
                lnvc_id=encode_lnvc_id(slot, LNVC.get(r, base, "gen")),
                name=view.read_name(slot).decode("utf-8", "replace"),
                n_senders=LNVC.get(r, base, "n_senders"),
                n_fcfs=LNVC.get(r, base, "n_fcfs"),
                n_bcast=LNVC.get(r, base, "n_bcast"),
                queued=LNVC.get(r, base, "nmsgs"),
                total_enqueued=LNVC.get(r, base, "seq"),
                peak_queued=LNVC.get(r, base, "hwm_nmsgs"),
                messages=(
                    _walk_ring_messages(view, base)
                    if is_ring
                    else _walk_messages(view, base)
                ),
                connections=_walk_connections(view, base),
                transport="ring" if is_ring else "freelist",
            )
        )
    return SegmentInfo(
        circuits=circuits,
        live_msgs=HDR.get(r, "live_msgs"),
        live_blocks=HDR.get(r, "live_blocks"),
        live_bytes=HDR.get(r, "live_bytes"),
        free_send=fl_count(r, HDR.u32["free_send"]),
        free_recv=fl_count(r, HDR.u32["free_recv"]),
        free_msg=fl_count(r, HDR.u32["free_msg"]),
        free_blk=sum(fl_count(r, h) for h in view.layout.shard_heads),
        total_sends=HDR.get(r, "total_sends"),
        total_receives=HDR.get(r, "total_receives"),
    )


# ---------------------------------------------------------------------------
# structural invariants
# ---------------------------------------------------------------------------

class InvariantViolation(AssertionError):
    """A structural invariant of the shared segment does not hold."""


def _walk_fifo(r, base, cap: int) -> list[int] | None:
    """Message header offsets from ``fifo_head``; ``None`` on a cycle."""
    out: list[int] = []
    msg = LNVC.get(r, base, "fifo_head")
    while msg != NIL:
        if len(out) > cap:
            return None
        out.append(msg)
        msg = MSG.get(r, msg, "next_msg")
    return out


def _ring_circuit_violations(
    view: MPFView, base: int, tag: str, level: str
) -> list[str]:
    """Ring-transport analogues of the per-circuit FIFO identities.

    The live slot set plays the FIFO's role: its size must match
    ``nmsgs``, its sequence numbers must increase with the claim index,
    cursors must stay within the claimed range, and every pending bitmap
    must be a subset of the registered reader mask.  At ``"final"``
    level the retirement rule must also be exact: an unretired slot owes
    either BROADCAST reads or an FCFS take.
    """
    r = view.region
    lay = view.layout
    cfg = view.cfg
    out: list[str] = []
    ring = LNVC.get(r, base, "ring")
    ridx = lay.ring_index(ring)
    if not (0 <= ridx < cfg.n_rings):
        return [f"{tag}: ring control offset {ring} outside the pool"]
    w = RING.get(r, ring, "next_write")
    f = RING.get(r, ring, "fcfs_next")
    mask = RING.get(r, ring, "reader_mask")
    live = _ring_live_slots(view, base)
    nmsgs = LNVC.get(r, base, "nmsgs")
    if nmsgs != len(live):
        out.append(f"{tag}: nmsgs={nmsgs} but {len(live)} live ring slots")
    if LNVC.get(r, base, "hwm_nmsgs") < nmsgs:
        out.append(f"{tag}: peak depth below current depth")
    if f > w:
        out.append(f"{tag}: fcfs_next={f} ahead of next_write={w}")
    if mask.bit_count() != LNVC.get(r, base, "n_bcast"):
        out.append(
            f"{tag}: reader mask holds {mask.bit_count()} bits but "
            f"n_bcast={LNVC.get(r, base, 'n_bcast')}"
        )
    seqnos = [RSLOT.get(r, sl, "seqno") for _, sl in live]
    if any(b <= a for a, b in zip(seqnos, seqnos[1:])):
        out.append(f"{tag}: sequence numbers not strictly increasing: {seqnos}")
    for idx, sl in live:
        pend = r.u32(sl + RSLOT_PENDING_OFF)
        if pend & ~mask:
            out.append(
                f"{tag}: slot for index {idx} owes reads to unregistered "
                f"reader bits {pend & ~mask:#x}"
            )
        if idx < f:
            st = RSLOT.get(r, sl, "state")
            if st & RS_FCFS_AVAILABLE and not st & RS_FCFS_TAKEN:
                out.append(
                    f"{tag}: FCFS cursor passed untaken available index {idx}"
                )
    for bit in range(RING_READERS):
        if not mask & (1 << bit):
            continue
        cur = RCUR.get(r, lay.ring_cur_off(ridx, bit), "next_seq")
        if cur > w:
            out.append(
                f"{tag}: reader bit {bit} cursor {cur} ahead of "
                f"next_write={w}"
            )
    if level == "final":
        for idx, sl in live:
            if RSLOT.get(r, sl, "busy"):
                out.append(
                    f"{tag}: slot for index {idx} still busy at quiescence"
                )
            st = RSLOT.get(r, sl, "state")
            pend = r.u32(sl + RSLOT_PENDING_OFF)
            if not pend and not (st & RS_FCFS_AVAILABLE and not st & RS_FCFS_TAKEN):
                out.append(
                    f"{tag}: slot for index {idx} fully discharged but "
                    "not retired"
                )
    return out


def collect_violations(
    view: MPFView, *, level: str = "final", expect_empty: bool = False
) -> list[str]:
    """Evaluate the segment's structural invariants; return violations.

    ``level`` selects how much quiescence the caller can vouch for:

    * ``"steady"`` — safe whenever no lock is held.  Checks the
      identities MPF maintains atomically under its locks: allocator
      counters vs free-list lengths, per-circuit FIFO length vs
      ``nmsgs``, strictly increasing sequence numbers, high-water
      marks, and the live-circuit count.  In-flight operations (an
      allocated-but-unlinked message between a send's phases, a popped
      descriptor not yet linked) do not disturb these.
    * ``"final"`` — requires full quiescence (no operation in flight;
      the state at the end of a run).  Adds reachability (every live
      message header/block/byte is on some circuit's FIFO), descriptor
      conservation, FCFS-head exactness, BROADCAST-head membership,
      busy-pin drainage, and descriptor-cache coherence against a
      from-scratch list walk.

    ``expect_empty`` additionally demands the fully drained state every
    clean shutdown must reach: no circuits, no messages, full pools.
    """
    if level not in ("steady", "final"):
        raise ValueError(f"unknown invariant level {level!r}")
    r = view.region
    cfg = view.cfg
    out: list[str] = []

    free_msg = fl_count(r, HDR.u32["free_msg"], limit=cfg.max_messages + 1)
    # Sharded segments keep one free list per shard (shard 0 is the
    # header's ``free_blk`` word); conservation sums them all.
    free_blk = sum(
        fl_count(r, h, limit=cfg.n_blocks + 1)
        for h in view.layout.shard_heads
    )
    live_msgs = HDR.get(r, "live_msgs")
    live_blocks = HDR.get(r, "live_blocks")
    live_bytes = HDR.get(r, "live_bytes")
    if free_msg + live_msgs != cfg.max_messages:
        out.append(
            f"header-pool identity broken: {free_msg} free + {live_msgs} live "
            f"!= {cfg.max_messages} total message headers"
        )
    if free_blk + live_blocks != cfg.n_blocks:
        out.append(
            f"block-pool identity broken: {free_blk} free + {live_blocks} live "
            f"!= {cfg.n_blocks} total blocks"
        )

    in_use_count = 0
    ring_count = 0
    queued_msgs = 0
    queued_blocks = 0
    queued_bytes = 0
    linked_send = 0
    linked_recv = 0
    for slot in range(cfg.max_lnvcs):
        base = view.layout.lnvc_off(slot)
        if not LNVC.get(r, base, "in_use"):
            continue
        in_use_count += 1
        tag = f"lnvc slot {slot}"
        is_ring = bool(LNVC.get(r, base, "transport"))
        if is_ring:
            ring_count += 1
            # Ring circuits have no FIFO; their slot pool carries the
            # equivalent identities, checked separately below.
            fifo = []
            fifo_set: set = set()
            out.extend(_ring_circuit_violations(view, base, tag, level))
        else:
            fifo = _walk_fifo(r, base, cfg.max_messages)
            if fifo is None:
                out.append(f"{tag}: FIFO is cyclic or overlong")
                continue
            nmsgs = LNVC.get(r, base, "nmsgs")
            if nmsgs != len(fifo):
                out.append(f"{tag}: nmsgs={nmsgs} but FIFO holds {len(fifo)}")
            if LNVC.get(r, base, "hwm_nmsgs") < nmsgs:
                out.append(f"{tag}: peak depth below current depth")
            seqnos = [MSG.get(r, m, "seqno") for m in fifo]
            if any(b <= a for a, b in zip(seqnos, seqnos[1:])):
                out.append(f"{tag}: sequence numbers not strictly increasing: {seqnos}")
            if fifo and LNVC.get(r, base, "fifo_tail") != fifo[-1]:
                out.append(f"{tag}: fifo_tail does not point at the last message")
            if not fifo and LNVC.get(r, base, "fifo_tail") != NIL:
                out.append(f"{tag}: empty FIFO with non-NIL tail")
            queued_msgs += len(fifo)
            queued_blocks += sum(MSG.get(r, m, "nblocks") for m in fifo)
            queued_bytes += sum(MSG.get(r, m, "length") for m in fifo)

        n_senders = LNVC.get(r, base, "n_senders")
        n_fcfs = LNVC.get(r, base, "n_fcfs")
        n_bcast = LNVC.get(r, base, "n_bcast")
        linked_send += n_senders
        linked_recv += n_fcfs + n_bcast

        if level == "final":
            fifo_set = set(fifo)
            # Descriptor lists match the counters and carry unique pids.
            sends, pids, desc = [], set(), LNVC.get(r, base, "send_list")
            while desc != NIL and len(sends) <= cfg.n_send:
                sends.append(desc)
                pid = SEND.get(r, desc, "pid")
                if pid in pids:
                    out.append(f"{tag}: duplicate send descriptor for pid {pid}")
                pids.add(pid)
                desc = SEND.get(r, desc, "next")
            if len(sends) != n_senders:
                out.append(
                    f"{tag}: n_senders={n_senders} but send list holds {len(sends)}"
                )
            recvs, pids, desc = [], set(), LNVC.get(r, base, "recv_list")
            got_fcfs = got_bcast = 0
            while desc != NIL and len(recvs) <= cfg.n_recv:
                recvs.append(desc)
                pid = RECV.get(r, desc, "pid")
                if pid in pids:
                    out.append(f"{tag}: duplicate recv descriptor for pid {pid}")
                pids.add(pid)
                proto = Protocol(RECV.get(r, desc, "proto"))
                if proto is Protocol.BROADCAST:
                    got_bcast += 1
                    head = RECV.get(r, desc, "head")
                    if is_ring:
                        # ``head`` is the reader's bitmap index here.
                        ring = LNVC.get(r, base, "ring")
                        mask = RING.get(r, ring, "reader_mask")
                        if head >= RING_READERS or not mask & (1 << head):
                            out.append(
                                f"{tag}: BROADCAST reader bit {head} of pid "
                                f"{pid} not set in the ring reader mask"
                            )
                    elif head != NIL and head not in fifo_set:
                        out.append(
                            f"{tag}: BROADCAST head of pid {pid} "
                            "points outside the FIFO"
                        )
                else:
                    got_fcfs += 1
                desc = RECV.get(r, desc, "next")
            if (got_fcfs, got_bcast) != (n_fcfs, n_bcast):
                out.append(
                    f"{tag}: receiver counters ({n_fcfs} FCFS, {n_bcast} BCAST) "
                    f"disagree with the list ({got_fcfs}, {got_bcast})"
                )
            # FCFS head is exactly the first untaken message (or NIL).
            first_untaken = NIL
            for m in fifo:
                if not MSG.get(r, m, "flags") & MsgFlags.FCFS_TAKEN:
                    first_untaken = m
                    break
            if LNVC.get(r, base, "fcfs_head") != first_untaken:
                out.append(f"{tag}: fcfs_head is not the first untaken message")
            for m in fifo:
                if MSG.get(r, m, "busy"):
                    out.append(f"{tag}: message #{MSG.get(r, m, 'seqno')} "
                               "still busy at quiescence")
                if MSG.get(r, m, "bcast_pending") > n_bcast:
                    out.append(f"{tag}: message #{MSG.get(r, m, 'seqno')} owes "
                               "more BROADCAST reads than receivers exist")

    live_lnvcs = HDR.get(r, "live_lnvcs")
    if live_lnvcs != in_use_count:
        out.append(
            f"live_lnvcs={live_lnvcs} but {in_use_count} slots are in use"
        )
    live_rings = HDR.get(r, "live_rings")
    if live_rings != ring_count:
        out.append(
            f"live_rings={live_rings} but {ring_count} ring circuits are in use"
        )

    if level == "final":
        if queued_msgs != live_msgs:
            out.append(
                f"message reachability broken: {live_msgs} live headers but "
                f"{queued_msgs} reachable from circuit FIFOs"
            )
        if queued_blocks != live_blocks:
            out.append(
                f"block reachability broken: {live_blocks} live blocks but "
                f"{queued_blocks} reachable from queued messages"
            )
        if queued_bytes != live_bytes:
            out.append(
                f"byte accounting broken: live_bytes={live_bytes} but queued "
                f"payloads total {queued_bytes}"
            )
        free_send = fl_count(r, HDR.u32["free_send"], limit=cfg.n_send + 1)
        free_recv = fl_count(r, HDR.u32["free_recv"], limit=cfg.n_recv + 1)
        if free_send + linked_send != cfg.n_send:
            out.append(
                f"send-descriptor conservation broken: {free_send} free + "
                f"{linked_send} linked != {cfg.n_send}"
            )
        if free_recv + linked_recv != cfg.n_recv:
            out.append(
                f"recv-descriptor conservation broken: {free_recv} free + "
                f"{linked_recv} linked != {cfg.n_recv}"
            )
        if cfg.n_rings:
            free_ring = fl_count(r, HDR.u32["free_ring"], limit=cfg.n_rings + 1)
            if free_ring + live_rings != cfg.n_rings:
                out.append(
                    f"ring-pool conservation broken: {free_ring} free + "
                    f"{live_rings} live != {cfg.n_rings}"
                )
        out.extend(_cache_violations(view))

    if expect_empty:
        if in_use_count:
            out.append(f"expected empty segment: {in_use_count} circuits live")
        if live_msgs or live_blocks or live_bytes:
            out.append(
                "expected drained pools: "
                f"live_msgs={live_msgs} live_blocks={live_blocks} "
                f"live_bytes={live_bytes}"
            )
        if live_rings:
            out.append(f"expected drained ring pool: live_rings={live_rings}")
    return out


def _cache_violations(view: MPFView) -> list[str]:
    """Check the ``(slot, pid)`` descriptor caches against a re-walk.

    A cache entry whose generation and ``conn_epoch`` still match the
    circuit must name exactly the descriptor (and walk length) a
    from-scratch list walk finds — the coherence contract the PR 2 fast
    path rests on.  Stale entries (generation or epoch moved on) are
    legal; they just miss.
    """
    from .ops import _find_recv, _find_send  # local import: cycle guard

    r = view.region
    out: list[str] = []
    for kind, cache, find in (
        ("send", view._send_cache, _find_send),
        ("recv", view._recv_cache, _find_recv),
    ):
        for (slot, pid), (desc, steps, gen, epoch) in cache.items():
            if slot >= view.cfg.max_lnvcs:
                continue
            base = view.layout.lnvc_off(slot)
            if not LNVC.get(r, base, "in_use"):
                continue
            if LNVC.get(r, base, "gen") != gen:
                continue
            if LNVC.get(r, base, "conn_epoch") != epoch:
                continue
            found, _, walked = find(view, base, pid)
            if (found, walked) != (desc, steps):
                out.append(
                    f"{kind}-descriptor cache incoherent for slot {slot} pid "
                    f"{pid}: cached ({desc}, {steps} steps) but a re-walk "
                    f"finds ({found}, {walked} steps)"
                )
    return out


def check_invariants(
    view: MPFView, *, level: str = "final", expect_empty: bool = False
) -> None:
    """Raise :class:`InvariantViolation` unless the segment is consistent.

    The single entry point shared by the :mod:`repro.check` model
    checker and the test suite (see :func:`collect_violations` for what
    each ``level`` covers).
    """
    violations = collect_violations(view, level=level, expect_empty=expect_empty)
    if violations:
        raise InvariantViolation(
            f"{len(violations)} invariant violation(s):\n  "
            + "\n  ".join(violations)
        )


def render_segment(info: SegmentInfo) -> str:
    """Human-readable report of a :class:`SegmentInfo`."""
    lines = [
        f"segment: {len(info.circuits)} live circuit(s), "
        f"{info.live_msgs} queued message(s), {info.live_bytes} payload bytes",
        f"  pools free: send={info.free_send} recv={info.free_recv} "
        f"msg={info.free_msg} blk={info.free_blk}",
        f"  traffic: {info.total_sends} sends, {info.total_receives} receives",
    ]
    for c in info.circuits:
        lines.append(
            f"  circuit '{c.name}' (id {c.lnvc_id}): "
            f"{c.n_senders} sender(s), {c.n_fcfs} FCFS, {c.n_bcast} BCAST; "
            f"{c.queued} queued of {c.total_enqueued} ever (peak {c.peak_queued})"
        )
        for conn in c.connections:
            extra = ""
            if conn.kind == "recv":
                extra = f" {conn.protocol.name}, {conn.reads} reads"
                if conn.backlog is not None:
                    extra += f", backlog {conn.backlog}"
            lines.append(f"    {conn.kind} pid={conn.pid}{extra}")
        for m in c.messages:
            lines.append(
                f"    msg #{m.seqno}: {m.length}B in {m.nblocks} block(s) "
                f"from pid {m.sender}, pending {m.bcast_pending}, "
                f"flags {m.flags.name or int(m.flags)}"
            )
    return "\n".join(lines)
