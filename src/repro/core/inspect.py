"""Segment inspection: structured dumps of live MPF state.

A deployed MPF application (threads, forked processes, or independent
processes attached to a named segment) sometimes needs to answer "what
is in there right now?" — which conversations exist, who is connected,
how deep the queues are, how much of each pool is left.  This module
walks the shared structures read-only and reports.

Consistency caveat: the walk takes no locks (it must be usable from a
diagnostic process that does not participate in the protocol), so on a
*running* system the snapshot can be torn, exactly as a debugger's view
of the paper's C structures would be.  On a quiescent segment it is
exact; tests use it that way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .freelist import fl_count
from .layout import HDR
from .ops import MPFView, encode_lnvc_id
from .protocol import NIL, MsgFlags, Protocol
from .structs import LNVC, MSG, RECV, SEND

__all__ = ["MessageInfo", "ConnectionInfo", "CircuitInfo", "SegmentInfo",
           "inspect_segment", "render_segment"]


@dataclass(frozen=True)
class MessageInfo:
    """One queued message."""

    seqno: int
    length: int
    nblocks: int
    sender: int
    flags: MsgFlags
    bcast_pending: int


@dataclass(frozen=True)
class ConnectionInfo:
    """One send or receive connection."""

    pid: int
    kind: str               # "send" | "recv"
    protocol: Protocol | None  # receive connections only
    reads: int = 0
    #: Messages this BROADCAST receiver has not yet read (None for FCFS).
    backlog: int | None = None


@dataclass(frozen=True)
class CircuitInfo:
    """One live LNVC."""

    lnvc_id: int
    name: str
    n_senders: int
    n_fcfs: int
    n_bcast: int
    queued: int
    total_enqueued: int
    #: Deepest the FIFO has ever been (the Figure 6 memory-pressure signal).
    peak_queued: int
    messages: list[MessageInfo] = field(default_factory=list)
    connections: list[ConnectionInfo] = field(default_factory=list)


@dataclass(frozen=True)
class SegmentInfo:
    """The whole segment."""

    circuits: list[CircuitInfo]
    live_msgs: int
    live_blocks: int
    live_bytes: int
    free_send: int
    free_recv: int
    free_msg: int
    free_blk: int
    total_sends: int
    total_receives: int

    def circuit(self, name: str) -> CircuitInfo:
        """The circuit called ``name`` (raises ``KeyError`` if absent)."""
        for c in self.circuits:
            if c.name == name:
                return c
        raise KeyError(name)


def _walk_messages(view: MPFView, base: int) -> list[MessageInfo]:
    r = view.region
    out = []
    msg = LNVC.get(r, base, "fifo_head")
    while msg != NIL:
        out.append(
            MessageInfo(
                seqno=MSG.get(r, msg, "seqno"),
                length=MSG.get(r, msg, "length"),
                nblocks=MSG.get(r, msg, "nblocks"),
                sender=MSG.get(r, msg, "sender"),
                flags=MsgFlags(MSG.get(r, msg, "flags")),
                bcast_pending=MSG.get(r, msg, "bcast_pending"),
            )
        )
        msg = MSG.get(r, msg, "next_msg")
    return out


def _walk_connections(view: MPFView, base: int) -> list[ConnectionInfo]:
    r = view.region
    out = []
    desc = LNVC.get(r, base, "send_list")
    while desc != NIL:
        out.append(ConnectionInfo(pid=SEND.get(r, desc, "pid"), kind="send",
                                  protocol=None))
        desc = SEND.get(r, desc, "next")
    desc = LNVC.get(r, base, "recv_list")
    while desc != NIL:
        proto = Protocol(RECV.get(r, desc, "proto"))
        backlog = None
        if proto is Protocol.BROADCAST:
            backlog = 0
            msg = RECV.get(r, desc, "head")
            while msg != NIL:
                backlog += 1
                msg = MSG.get(r, msg, "next_msg")
        out.append(
            ConnectionInfo(
                pid=RECV.get(r, desc, "pid"),
                kind="recv",
                protocol=proto,
                reads=RECV.get(r, desc, "nreads"),
                backlog=backlog,
            )
        )
        desc = RECV.get(r, desc, "next")
    return out


def inspect_segment(view: MPFView) -> SegmentInfo:
    """Walk the segment read-only and return its structured state."""
    r = view.region
    circuits = []
    for slot in range(view.cfg.max_lnvcs):
        base = view.layout.lnvc_off(slot)
        if not LNVC.get(r, base, "in_use"):
            continue
        circuits.append(
            CircuitInfo(
                lnvc_id=encode_lnvc_id(slot, LNVC.get(r, base, "gen")),
                name=view.read_name(slot).decode("utf-8", "replace"),
                n_senders=LNVC.get(r, base, "n_senders"),
                n_fcfs=LNVC.get(r, base, "n_fcfs"),
                n_bcast=LNVC.get(r, base, "n_bcast"),
                queued=LNVC.get(r, base, "nmsgs"),
                total_enqueued=LNVC.get(r, base, "seq"),
                peak_queued=LNVC.get(r, base, "hwm_nmsgs"),
                messages=_walk_messages(view, base),
                connections=_walk_connections(view, base),
            )
        )
    return SegmentInfo(
        circuits=circuits,
        live_msgs=HDR.get(r, "live_msgs"),
        live_blocks=HDR.get(r, "live_blocks"),
        live_bytes=HDR.get(r, "live_bytes"),
        free_send=fl_count(r, HDR.u32["free_send"]),
        free_recv=fl_count(r, HDR.u32["free_recv"]),
        free_msg=fl_count(r, HDR.u32["free_msg"]),
        free_blk=fl_count(r, HDR.u32["free_blk"]),
        total_sends=HDR.get(r, "total_sends"),
        total_receives=HDR.get(r, "total_receives"),
    )


def render_segment(info: SegmentInfo) -> str:
    """Human-readable report of a :class:`SegmentInfo`."""
    lines = [
        f"segment: {len(info.circuits)} live circuit(s), "
        f"{info.live_msgs} queued message(s), {info.live_bytes} payload bytes",
        f"  pools free: send={info.free_send} recv={info.free_recv} "
        f"msg={info.free_msg} blk={info.free_blk}",
        f"  traffic: {info.total_sends} sends, {info.total_receives} receives",
    ]
    for c in info.circuits:
        lines.append(
            f"  circuit '{c.name}' (id {c.lnvc_id}): "
            f"{c.n_senders} sender(s), {c.n_fcfs} FCFS, {c.n_bcast} BCAST; "
            f"{c.queued} queued of {c.total_enqueued} ever (peak {c.peak_queued})"
        )
        for conn in c.connections:
            extra = ""
            if conn.kind == "recv":
                extra = f" {conn.protocol.name}, {conn.reads} reads"
                if conn.backlog is not None:
                    extra += f", backlog {conn.backlog}"
            lines.append(f"    {conn.kind} pid={conn.pid}{extra}")
        for m in c.messages:
            lines.append(
                f"    msg #{m.seqno}: {m.length}B in {m.nblocks} block(s) "
                f"from pid {m.sender}, pending {m.bcast_pending}, "
                f"flags {m.flags.name or int(m.flags)}"
            )
    return "\n".join(lines)
