"""MPF core: the paper's contribution, runtime-agnostic.

Submodules:

* :mod:`~repro.core.protocol` — FCFS/BROADCAST and segment constants,
* :mod:`~repro.core.errors` — the exception hierarchy,
* :mod:`~repro.core.region`, :mod:`~repro.core.layout`,
  :mod:`~repro.core.freelist`, :mod:`~repro.core.structs` — the shared
  byte-level data structures of paper §3.1,
* :mod:`~repro.core.effects`, :mod:`~repro.core.work` — the effect
  protocol separating the algorithm from the system-dependent part,
* :mod:`~repro.core.ops` — the eight MPF primitives of paper §2,
* :mod:`~repro.core.costmodel` — the calibrated instruction budgets.
"""

from .costmodel import Costs, DEFAULT_COSTS, costs_with, free_costs
from .errors import (
    BufferOverflowError,
    DuplicateConnectionError,
    MPFConfigError,
    MPFError,
    MPFNameError,
    NoFreeLNVCError,
    NotConnectedError,
    OutOfDescriptorsError,
    OutOfMessageMemoryError,
    ProtocolViolationError,
    RegionFormatError,
    UnknownLNVCError,
)
from .layout import MPFConfig, SegmentLayout, format_region
from .ops import MPFView
from .protocol import BROADCAST, FCFS, Protocol
from .region import SharedRegion

__all__ = [
    "Costs",
    "DEFAULT_COSTS",
    "costs_with",
    "free_costs",
    "MPFConfig",
    "SegmentLayout",
    "format_region",
    "MPFView",
    "SharedRegion",
    "Protocol",
    "FCFS",
    "BROADCAST",
    "MPFError",
    "MPFConfigError",
    "MPFNameError",
    "UnknownLNVCError",
    "NotConnectedError",
    "DuplicateConnectionError",
    "ProtocolViolationError",
    "NoFreeLNVCError",
    "OutOfDescriptorsError",
    "OutOfMessageMemoryError",
    "BufferOverflowError",
    "RegionFormatError",
]
