"""Work descriptors: abstract cost accounting for MPF operations.

The same MPF primitive implementation must run on a real machine (where
its cost is whatever the interpreter takes) and on the simulated Sequent
Balance 21000 (where its cost must be *modelled*).  Primitives therefore
describe the work they perform in machine-neutral units — instructions
executed, bytes copied through shared memory, blocks manipulated, floating
point operations — and each runtime prices those units:

* the simulator converts them to seconds with
  :class:`~repro.core.costmodel.CostModel`, charging the simulated clock;
* real runtimes ignore them (real time elapses by itself).

Keeping the unit vocabulary small and physical is what makes the cost
model auditable: every constant in the model corresponds to a nameable
activity of the 1987 C implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Work"]


@dataclass(frozen=True, slots=True)
class Work:
    """An amount of abstract machine work.

    Attributes
    ----------
    instrs:
        General instructions: list manipulation, field updates, searches.
    copy_bytes:
        Payload bytes moved between a user buffer and message blocks.
        Copies traverse the shared bus, so the simulator also feeds this
        into the bus-contention model.
    blocks:
        Message blocks allocated, filled, drained or freed; each block
        costs loop and linkage overhead beyond its bytes (with the paper's
        10-byte blocks this overhead dominates, which is exactly why the
        base benchmark saturates near 22 KB/s).
    flops:
        Floating point operations (application compute, Figures 7 and 8).
    page_bytes:
        Bytes of shared segment newly touched; input to the paging model
        (Figure 6).
    label:
        Optional tag for tracing and statistics.
    """

    instrs: int = 0
    copy_bytes: int = 0
    blocks: int = 0
    flops: int = 0
    page_bytes: int = 0
    label: str = ""

    def __add__(self, other: "Work") -> "Work":
        return Work(
            self.instrs + other.instrs,
            self.copy_bytes + other.copy_bytes,
            self.blocks + other.blocks,
            self.flops + other.flops,
            self.page_bytes + other.page_bytes,
            self.label or other.label,
        )

    def is_zero(self) -> bool:
        """True when charging this work would be a no-op."""
        return not (self.instrs or self.copy_bytes or self.blocks or self.flops or self.page_bytes)
