"""Record layouts for the shared-segment data structures.

These are the byte-level equivalents of the C structs sketched in paper
§3.1 (Figure 2):

* :data:`LNVC` — one circuit descriptor: name, lock, FIFO head/tail, the
  shared FCFS head pointer, connection lists and connection counts.
* :data:`SEND` / :data:`RECV` — send and receive connection descriptors;
  a BROADCAST receive descriptor carries its individual FIFO head pointer
  ("BROADCAST receive processes have an additional descriptor field used
  for individual FIFO head pointers").
* :data:`MSG` — a message header: length, block chain, FIFO link, and the
  retirement-accounting fields (see DESIGN.md §4).
* message blocks — ``u32 next`` + ``block_size`` data bytes; their stride
  depends on the configured block size, so they are described by
  :func:`block_stride` rather than a fixed :class:`Record`.

A :class:`Record` maps field names to offsets; all fields are u32.  Access
goes through a bound :class:`~repro.core.region.SharedRegion` plus the
record's base offset — the same pointer-plus-field-offset arithmetic the C
compiler would emit.
"""

from __future__ import annotations

from .protocol import NAME_MAX
from .region import SharedRegion

__all__ = [
    "Record",
    "LNVC",
    "SEND",
    "RECV",
    "MSG",
    "BLK_NEXT",
    "block_stride",
    "RING",
    "RSLOT",
    "RCUR",
    "CACHE_LINE",
    "RING_READERS",
    "RS_FCFS_AVAILABLE",
    "RS_FCFS_TAKEN",
    "RS_RETIRED",
    "RSLOT_PENDING_OFF",
    "RSLOT_DATA_OFF",
    "ring_slot_stride",
]


class Record:
    """A fixed layout of named u32 fields, plus optional trailing raw bytes.

    ``fields`` are laid out in declaration order, four bytes each;
    ``tail_bytes`` reserves unstructured space after them (used for the
    LNVC name).  The first field of every record doubles as the free-list
    link while the record is unallocated (see :mod:`repro.core.freelist`).
    """

    __slots__ = ("name", "offsets", "size", "tail_off")

    def __init__(self, name: str, fields: tuple[str, ...], tail_bytes: int = 0) -> None:
        self.name = name
        self.offsets = {f: 4 * i for i, f in enumerate(fields)}
        self.tail_off = 4 * len(fields)
        self.size = self.tail_off + tail_bytes

    def get(self, region: SharedRegion, base: int, field: str) -> int:
        """Read field ``field`` of the record at byte offset ``base``."""
        return region.u32(base + self.offsets[field])

    def set(self, region: SharedRegion, base: int, field: str, value: int) -> None:
        """Write field ``field`` of the record at byte offset ``base``."""
        region.set_u32(base + self.offsets[field], value)

    def add(self, region: SharedRegion, base: int, field: str, delta: int) -> int:
        """Add ``delta`` to field ``field``; returns the new value."""
        return region.add_u32(base + self.offsets[field], delta)

    def clear(self, region: SharedRegion, base: int) -> None:
        """Zero the whole record (fields and tail)."""
        region.fill(base, self.size, 0)

    def dump(self, region: SharedRegion, base: int) -> dict[str, int]:
        """Snapshot all fields as a dict (diagnostics and tests)."""
        return {f: region.u32(base + off) for f, off in self.offsets.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Record({self.name}, size={self.size})"


#: LNVC descriptor.  ``in_use`` doubles as the free-list link position but
#: LNVC slots are allocated by table scan, not free list, because opens
#: must search by name anyway (paper: LNVC names "must be unique").
LNVC = Record(
    "LNVC",
    (
        "in_use",      # 0 = free slot, 1 = live circuit
        "gen",         # generation counter, bumped on delete (stale-id hygiene)
        "nmsgs",       # messages physically linked in the FIFO
        "fifo_head",   # oldest message still linked (MSG offset or NIL)
        "fifo_tail",   # newest message (MSG offset or NIL)
        "fcfs_head",   # oldest message not yet FCFS-taken (shared FCFS head)
        "send_list",   # head of send-descriptor list (SEND offset or NIL)
        "recv_list",   # head of receive-descriptor list (RECV offset or NIL)
        "n_senders",
        "n_fcfs",
        "n_bcast",
        "seq",         # messages ever enqueued on this circuit (statistics)
        "hwm_nmsgs",   # deepest the FIFO has ever been (statistics)
        "name_len",    # bytes of UTF-8 name stored in the tail
        "conn_epoch",  # bumped on every send/recv list mutation (see ops)
        "transport",   # 0 = free-list FIFO, 1 = ring (fixed at creation)
        "ring",        # RING control-block offset (ring circuits only)
    ),
    tail_bytes=NAME_MAX + 1,
)

#: Send connection descriptor: just the owning process and the list link.
SEND = Record("SEND", ("pid", "next"))

#: Receive connection descriptor.  ``head`` is meaningful only for
#: BROADCAST connections: the next message this receiver will read, or NIL
#: when it has caught up with the FIFO tail.
RECV = Record("RECV", ("pid", "proto", "head", "next", "nreads"))

#: Message header (paper §3.1: "a header for saving pertinent message
#: information (e.g., message length, a pointer to the tail, and a pointer
#: to the next message in a list of messages for an LNVC)").
MSG = Record(
    "MSG",
    (
        "length",         # payload bytes
        "nblocks",        # blocks in the chain
        "first_blk",      # head of the block chain (block offset or NIL)
        "next_msg",       # FIFO link to the next-younger message
        "bcast_pending",  # broadcast receivers that still must read this
        "busy",           # receivers currently copying out of the chain
        "flags",          # MsgFlags bits
        "seqno",          # enqueue sequence number on the circuit
        "sender",         # pid of the sending process
    ),
)

#: Offset of the ``next`` link inside a message block.
BLK_NEXT = 0


def block_stride(block_size: int) -> int:
    """Bytes occupied by one message block: u32 link + ``block_size`` data.

    The paper used 10-byte blocks in all experiments ("In all of our
    experiments, 10 byte message blocks were used"), giving a 14-byte
    stride here.
    """
    return 4 + block_size


# ---------------------------------------------------------------------------
# ring transport records (see docs/transport.md)
# ---------------------------------------------------------------------------

#: Coherence granularity of the modeled bus (and of every machine this is
#: likely to run on).  Ring slot headers, the per-slot reader bitmap and
#: the per-reader cursors are each padded to this, mpsoc-style, so that
#: writer traffic and each reader's cursor never share a line.
CACHE_LINE = 64

#: Maximum BROADCAST readers per ring circuit: the per-slot pending
#: bitmap is one u32, one bit per reader index.
RING_READERS = 32

#: Ring control block, one per ring in the pool.  While free, the first
#: word (``next_write``) doubles as the free-list link; every field is
#: re-initialized when a circuit claims the ring.  Counters are monotone
#: u32 *message indexes*, not slot indexes: ``index % ring_slots`` picks
#: the slot, and the full index distinguishes laps, which is what makes
#: slot reuse (generation aliasing) detectable instead of silent.
RING = Record(
    "RING",
    (
        "next_write",   # next message index a sender will claim
        "fcfs_next",    # shared FCFS cursor: next index not yet FCFS-taken
        "reader_mask",  # bitmap of registered BROADCAST reader indexes
    ),
    tail_bytes=CACHE_LINE - 12,  # pad: adjacent rings never share a line
)

#: Ring slot header.  ``seq`` is the commit word: 0 = never written,
#: ``index + 1`` = message ``index`` is committed in this slot.  Readers
#: treat any other value as "not mine yet".  ``state`` carries the
#: retirement bits (RS_*), mirroring the free-list transport's MsgFlags.
RSLOT = Record(
    "RSLOT",
    (
        "seq",      # commit word: message index + 1, or 0
        "length",   # payload bytes
        "seqno",    # circuit sequence number (statistics / tracing)
        "sender",   # pid of the sending process
        "state",    # RS_* retirement bits
        "busy",     # readers currently copying out of the slot
    ),
)

#: Per-reader ring cursor, padded to its own cache line (mpsoc's
#: ``mpsoc_reader_index``): ``next_seq`` is the next message index this
#: BROADCAST reader will consume; ``nreads`` counts deliveries.
RCUR = Record("RCUR", ("next_seq", "nreads"), tail_bytes=CACHE_LINE - 8)

#: ``state`` bits of a ring slot.
RS_FCFS_AVAILABLE = 1  #: must be (or may yet be) taken by an FCFS receiver
RS_FCFS_TAKEN = 2      #: an FCFS receiver consumed it
RS_RETIRED = 4         #: fully discharged; counted out of nmsgs, reusable

#: Byte offset of the per-slot pending bitmap: a u32 alone on the slot's
#: second cache line (mpsoc puts ``bitmap`` on its own line so the
#: writer's completion poll never collides with payload reads).
RSLOT_PENDING_OFF = CACHE_LINE

#: Byte offset of the payload inside a slot.
RSLOT_DATA_OFF = 2 * CACHE_LINE


def ring_slot_stride(slot_bytes: int) -> int:
    """Bytes one ring slot occupies: header line + bitmap line + payload
    rounded up to whole cache lines."""
    data = (slot_bytes + CACHE_LINE - 1) & ~(CACHE_LINE - 1)
    return RSLOT_DATA_OFF + data
