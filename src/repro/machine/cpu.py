"""Processor timing model: composing CPU, bus and VM into a price.

:class:`BalanceTiming` is the :class:`~repro.machine.engine.TimingModel`
of the simulated Balance 21000.  It converts the machine-neutral
:class:`~repro.core.work.Work` units emitted by MPF primitives and
application code into simulated seconds:

* ``instrs``  × instruction time (10 cycles at 10 MHz ⇒ 1 µs each),
* ``flops``   × floating point time (software-assisted FPU),
* ``copy_bytes`` adds the raw bus transfer time (tiny at 80 MB/s, kept
  for completeness) and marks the charge as a copy phase so the bus model
  can apply its contention slowdown,
* ``page_bytes`` is surcharged by the paging model when the live message
  footprint exceeds the resident budget,
* the whole charge stretches when more processes are runnable than
  processors exist (coarse multiplexing; the paper never oversubscribed).
"""

from __future__ import annotations

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.work import Work
from .balance import MachineConfig
from .bus import BusModel
from .cache import CacheModel
from .vm import VmModel

__all__ = ["BalanceTiming"]


class BalanceTiming:
    """Prices :class:`Work` on a :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig, costs: Costs = DEFAULT_COSTS) -> None:
        self.config = config
        self.costs = costs
        self.bus = BusModel(config.bus_contention_alpha)
        self.vm = VmModel(
            resident_bytes=config.resident_bytes,
            page_bytes=config.page_bytes,
            fault_seconds=config.page_fault_seconds,
            enabled=config.paging_enabled,
        )
        self.cache = CacheModel(
            cache_bytes=config.cache_bytes,
            miss_seconds=config.cache_miss_seconds,
            enabled=config.cache_enabled,
        )
        self._t_instr = config.instr_seconds
        self._t_flop = config.flop_seconds
        self._bus_byte = 1.0 / config.bus_bytes_per_second
        self._n_cpus = config.n_cpus
        # Contract with the epoch batcher (machine/engine.py): for work
        # with no copy_bytes/blocks/page_bytes, price() is exactly
        #   dt = instrs*t_instr [+ flops*t_flop] [* running/n_cpus]
        # — stateless, so the engine may inline it from these constants
        # bit-for-bit.  Timing models without this attribute (custom
        # test models) simply take the per-call price() path.
        self.analytic_charge = (self._t_instr, self._t_flop, self._n_cpus)

    # -- TimingModel interface ------------------------------------------------

    def price(self, work: Work, running: int) -> float:
        """Simulated seconds for ``work`` with ``running`` busy processes.

        The common case — instruction-only work from an uncontended,
        un-oversubscribed primitive — takes the two-line fast path; the
        model terms are only evaluated for work that carries their
        inputs, and adding a zero term is a float identity, so the fast
        path prices bit-for-bit identically to the full expression.
        """
        dt = work.instrs * self._t_instr
        if work.flops:
            dt += work.flops * self._t_flop
        if work.copy_bytes:
            dt += work.copy_bytes * self._bus_byte
            dt *= self.bus.slowdown()
        if running > self._n_cpus:
            dt *= running / self._n_cpus
        if work.blocks:
            dt += self.cache.penalty(work.blocks)
        if work.page_bytes:
            dt += self.vm.touch(work.page_bytes)
        return dt

    def acquire_cost(self) -> float:
        return self.costs.lock_acquire * self._t_instr

    def release_cost(self) -> float:
        return self.costs.lock_release * self._t_instr

    def wake_cost(self, n_waiters: int) -> float:
        return (self.costs.wake + 20 * n_waiters) * self._t_instr

    def copy_started(self) -> None:
        self.bus.started()

    def copy_finished(self) -> None:
        self.bus.finished()
