"""Execution tracing for simulated runs (compatibility home of ``Tracer``).

The effect-recording core now lives in :mod:`repro.obs.events` as
:class:`~repro.obs.events.EffectLog`, where it serves the runtime-wide
observability layer; :class:`Tracer` is a behaviour-preserving subclass
kept at its historical import path.  A :class:`Tracer` plugs into
:class:`~repro.runtime.sim.SimRuntime` (or the engine directly) and
records every dispatched effect with its simulated timestamp:

* :meth:`Tracer.summary` — per-process counts and charged-time split by
  work label (``send-copy``, ``recv-copy``, ``send-link``, ...), the
  decomposition behind the Figure 3 analysis;
* :meth:`Tracer.lock_profile` — per-lock acquisition counts, the
  contention evidence behind Figure 4;
* :meth:`Tracer.timeline` — a plain-text event timeline for debugging
  protocol interleavings.

Tracing is observational: it never changes simulated timing.  For
cross-runtime measurement (threads, procs, posix) use
:class:`repro.obs.Recorder`, which does not depend on effect ``repr``
strings and therefore also works where no engine exists.
"""

from __future__ import annotations

from ..obs.events import EffectLog, TraceEvent

__all__ = ["TraceEvent", "Tracer"]


class Tracer(EffectLog):
    """Collects engine trace callbacks; pass as ``SimRuntime(trace=...)``.

    Identical to :class:`~repro.obs.events.EffectLog` (the dataclass it
    inherits everything from); retained so existing imports and pickles
    keep working.
    """
