"""Machine description of the Sequent Balance 21000 testbed.

Paper §4: "All experiments were conducted on a machine containing 20
processors and 16 Mbytes of memory.  Each Balance 21000 processor is a
10 MHz National Semiconductor NS32032 microprocessor, and all processors
are connected to shared memory by a shared bus with a 80 Mbyte/s (maximum)
transfer rate.  Each processor has a 8K byte, write-through cache and an
8K byte local memory."

:class:`MachineConfig` captures the published hardware parameters together
with the small number of *model* parameters (instruction rate, floating
point rate, bus contention coefficient, paging budget) that calibrate the
simulation against the paper's measured curves.  EXPERIMENTS.md records
the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineConfig", "BALANCE_21000"]


@dataclass(frozen=True)
class MachineConfig:
    """Hardware and timing-model parameters of the simulated machine."""

    # -- published hardware (paper §4) --------------------------------------
    #: Processor count.
    n_cpus: int = 20
    #: Processor clock, Hz (10 MHz NS32032).
    cpu_hz: float = 10e6
    #: Main memory, bytes (16 MB).
    memory_bytes: int = 16 << 20
    #: Shared bus maximum transfer rate, bytes/second (80 MB/s).
    bus_bytes_per_second: float = 80e6
    #: Per-processor write-through cache, bytes (8 KB).
    cache_bytes: int = 8 << 10
    #: Virtual memory page size, bytes (NS32082 MMU: 512-byte pages).
    page_bytes: int = 512

    # -- model parameters (calibrated; see EXPERIMENTS.md) --------------------
    #: Average cycles per instruction on pointer-heavy C code.  The
    #: NS32032 retired roughly one instruction per 8-12 cycles on such
    #: code, i.e. ~1 MIPS at 10 MHz; 10 cycles/instr gives exactly that.
    cycles_per_instr: float = 10.0
    #: Seconds per double-precision floating point *element operation* —
    #: arithmetic plus the array addressing and loop overhead around it
    #: in compiled C.  The NS32081 FPU plus its slow coupling and the
    #: surrounding integer work put this in the tens of microseconds
    #: (the Balance measured ~0.1 MFLOPS on LINPACK-style loops, and the
    #: element overhead roughly triples the pure-FP time).  Calibrated
    #: against Figure 7's speedup levels.
    flop_seconds: float = 45e-6
    #: Extra fractional bus cost per *other* concurrent copier.  Captures
    #: the write-through caches pushing every copied byte onto the shared
    #: bus; produces the sub-linear broadcast scaling of Figure 5.
    bus_contention_alpha: float = 0.008
    #: Resident-set budget for MPF message memory, bytes.  When the
    #: high-water message footprint exceeds this, block touches begin to
    #: fault (Figure 6's decline past ~10 processes at 1024-byte messages).
    resident_bytes: int = 24 << 10
    #: Seconds per page fault.  Calibrated to Figure 6: with 1024-byte
    #: messages the random benchmark peaks near 10-14 processes and then
    #: declines, while 256-byte messages only begin to fault at 20
    #: processes — a 1987 Unix reclaim with occasional disk involvement.
    page_fault_seconds: float = 30e-3
    #: Enable the paging model (benchmarks that predate it switch it off).
    paging_enabled: bool = True
    #: Read-miss stall per message block once the cycled block footprint
    #: exceeds the 8 KB cache (a handful of memory accesses at ~1 µs).
    cache_miss_seconds: float = 4e-6
    #: Enable the write-through cache model.
    cache_enabled: bool = True

    @property
    def instr_seconds(self) -> float:
        """Seconds per average instruction."""
        return self.cycles_per_instr / self.cpu_hz

    def with_cpus(self, n_cpus: int) -> "MachineConfig":
        """Copy with a different processor count."""
        return replace(self, n_cpus=n_cpus)

    def without_paging(self) -> "MachineConfig":
        """Copy with the paging model disabled."""
        return replace(self, paging_enabled=False)

    def without_cache(self) -> "MachineConfig":
        """Copy with the cache model disabled."""
        return replace(self, cache_enabled=False)


#: The paper's testbed.
BALANCE_21000 = MachineConfig()
