"""Deterministic discrete-event engine for the simulated multiprocessor.

Processes are Python generators that yield the effect objects of
:mod:`repro.core.effects` (MPF primitives already speak that vocabulary;
application code adds its own ``Charge`` effects for compute).  The engine
interprets each effect against simulated locks, wait channels and a
pluggable :class:`TimingModel`, advancing a virtual clock.

Determinism: events are ordered by ``(time, sequence)`` with a
monotonically increasing sequence number, and every queue (lock waiters,
channel sleepers) is FIFO.  Two runs of the same program produce identical
traces — the property that makes the reproduced figures exact rather than
sampled.

Deadlock: when no event is pending but processes are still blocked, the
engine raises :class:`DeadlockError` naming the blocked processes and what
they wait on.  The paper discusses exactly this programming hazard (§3.2:
messages lost when senders close before receivers join); the detector
turns it from a hang into a diagnosis.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort as _insort
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator, Protocol as TypingProtocol

_heappush = heapq.heappush
_heappop = heapq.heappop
_INF = float("inf")

from ..core.effects import (
    Acquire,
    Charge,
    ChargeMany,
    FusedSection,
    Release,
    WaitOn,
    Wake,
)
from ..core.work import Work

__all__ = [
    "DeadlockError",
    "SimulationError",
    "TimingModel",
    "ZeroTimingModel",
    "SimProcess",
    "Engine",
    "enable_label_profile",
    "disable_label_profile",
    "epoch_enabled",
    "set_epoch",
]

ProcGen = Generator[object, object, object]

#: Process-wide per-label charge aggregation, for ``python -m repro.bench
#: profile --top N``: maps effect label -> [count, charged simulated
#: seconds] while enabled, ``None`` (one global load per charge, no
#: other cost) otherwise.  Engine-level rather than Recorder-level so it
#: sees every engine any figure constructs internally.
_LABEL_PROF: dict | None = None


def enable_label_profile() -> dict:
    """Start aggregating charges by label; returns the live dict."""
    global _LABEL_PROF
    _LABEL_PROF = {}
    return _LABEL_PROF


def disable_label_profile() -> None:
    """Stop aggregating (and stop paying the per-charge dict update)."""
    global _LABEL_PROF
    _LABEL_PROF = None


# Epoch batching default for uncontrolled runs.  When several processes
# have pending events, :meth:`Engine._run_epoch` retires them in exact
# global ``(time, seq)`` order without bouncing each one through the
# event heap.  The path is byte-identity-gated like fusion, and
# ``MPF_EPOCH=off`` is the matching escape hatch (forces the classic
# one-heap-crossing-per-event loop, which produces identical output).
_epoch_default = os.environ.get("MPF_EPOCH", "").lower() not in (
    "0", "off", "false", "no",
)


def epoch_enabled() -> bool:
    """Whether uncontrolled runs batch quiescent epochs (MPF_EPOCH knob)."""
    return _epoch_default


def set_epoch(on: bool) -> None:
    """Override the epoch-batching default (tests and A/B comparisons)."""
    global _epoch_default
    _epoch_default = bool(on)


class SimulationError(RuntimeError):
    """Structural error inside the simulation (not the simulated program)."""


class DeadlockError(SimulationError):
    """Every remaining process is blocked and no event can wake it."""


class TimingModel(TypingProtocol):
    """Prices machine activity in simulated seconds."""

    def price(self, work: Work, running: int) -> float:
        """Seconds to perform ``work`` with ``running`` busy processors."""
        ...

    def acquire_cost(self) -> float:
        """Seconds for an (uncontended) lock acquisition."""
        ...

    def release_cost(self) -> float:
        """Seconds for a lock release."""
        ...

    def wake_cost(self, n_waiters: int) -> float:
        """Seconds the waker spends waking ``n_waiters`` sleepers."""
        ...

    def copy_started(self) -> None:
        """A process entered a shared-memory copy phase (bus tracking)."""
        ...

    def copy_finished(self) -> None:
        """A process left a shared-memory copy phase."""
        ...


class ZeroTimingModel:
    """Everything is free.  Used by functional tests of the engine itself."""

    def price(self, work: Work, running: int) -> float:
        return 0.0

    def acquire_cost(self) -> float:
        return 0.0

    def release_cost(self) -> float:
        return 0.0

    def wake_cost(self, n_waiters: int) -> float:
        return 0.0

    def copy_started(self) -> None:
        pass

    def copy_finished(self) -> None:
        pass


_RUNNABLE = "runnable"
_WAIT_LOCK = "wait-lock"
_WAIT_CHAN = "wait-chan"
_DONE = "done"
_FAILED = "failed"


@dataclass
class SimProcess:
    """One simulated process: a generator plus scheduling state."""

    name: str
    gen: ProcGen
    pid: int
    state: str = _RUNNABLE
    #: Value (or exception) to inject at the next resume.
    _inbox: object = None
    _throw: BaseException | None = None
    #: Generator return value once finished.
    result: object = None
    #: Exception that terminated the process, if any.
    error: BaseException | None = None
    #: Lock the process must reacquire when woken from a channel.
    _wait_lock: int | None = None
    #: True while reacquiring a lock on the way out of a WaitOn (the
    #: reacquisition is implicit: it is not an Acquire effect, and the
    #: recorder must not count it as one).
    _implicit_reacquire: bool = False
    #: Simulated time spent blocked on locks (statistics).
    lock_wait_time: float = 0.0
    _blocked_since: float = 0.0
    #: True while the process is inside a Charge with copy_bytes > 0.
    _copying: bool = False
    #: In-flight FusedSection state ``[steps, next_index, result]`` or
    #: ``None``.  Present across parks: a fused process blocked on a
    #: contended lock resumes mid-section when the lock is granted.
    _fused: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimProcess({self.name!r}, pid={self.pid}, state={self.state})"


class _SimLock:
    """A FIFO mutex in simulated time."""

    __slots__ = ("owner", "waiters", "acquired_at")

    def __init__(self) -> None:
        self.owner: SimProcess | None = None
        self.waiters: deque[SimProcess] = deque()
        #: Simulated time of the current owner's grant (hold-time stats).
        self.acquired_at = 0.0


class _WaitChannel:
    """A queue of sleeping processes (condition-variable wait set)."""

    __slots__ = ("sleepers",)

    def __init__(self) -> None:
        self.sleepers: deque[SimProcess] = deque()


@dataclass
class EngineStats:
    """Aggregate counters maintained by the engine."""

    events: int = 0
    charges: int = 0
    charged_seconds: float = 0.0
    lock_acquires: int = 0
    lock_contended: int = 0
    wakes: int = 0
    woken: int = 0
    #: Heap-crossing counters: how many events actually went through the
    #: event heap (push and pop are counted at every heapq call site).
    #: ``events / heap_pops`` is the wall-clock-jitter-proof measure of
    #: how much work the pending-resume slot, fused sections and epoch
    #: batching retire without touching the heap.
    heap_pushes: int = 0
    heap_pops: int = 0
    #: Epochs entered by :meth:`Engine._run_epoch` and events retired
    #: inside them; ``epoch_events / epoch_batches`` is the mean batch.
    epoch_batches: int = 0
    epoch_events: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "events": self.events,
            "charges": self.charges,
            "charged_seconds": self.charged_seconds,
            "lock_acquires": self.lock_acquires,
            "lock_contended": self.lock_contended,
            "wakes": self.wakes,
            "woken": self.woken,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "epoch_batches": self.epoch_batches,
            "epoch_events": self.epoch_events,
        }


class Engine:
    """The event loop.

    Parameters
    ----------
    n_locks, n_channels:
        Sizes of the lock and wait-channel tables (from
        :class:`~repro.core.layout.MPFConfig`).
    timing:
        The :class:`TimingModel` pricing every activity.
    n_cpus:
        Simulated processors.  When more processes are simultaneously
        runnable than processors exist, charges stretch proportionally
        (coarse processor multiplexing; adequate because the paper never
        ran more processes than the Balance's 20 CPUs).
    trace:
        Optional callable receiving ``(time, process_name, event_str)``.
    recorder:
        Optional :class:`repro.obs.Recorder` receiving structured
        metrics hooks (lock wait/hold times, charge labels) with
        simulated timestamps.  Observational: never changes timing.
    scheduler:
        Optional schedule policy.  When set, the engine runs in
        *controlled* mode: at every point where more than one pending
        event shares the earliest timestamp, the policy's
        ``choose(now, candidates)`` picks which process steps next
        (candidates are :class:`SimProcess`, ordered by sequence number,
        so index 0 is the default FIFO choice).  Under
        :class:`ZeroTimingModel` every pending event is simultaneous,
        which exposes the full interleaving space to the policy — the
        hook :mod:`repro.check` uses for systematic schedule
        exploration.  If the policy has an ``attach(engine)`` method it
        is called once before the first event.
    """

    def __init__(
        self,
        n_locks: int,
        n_channels: int,
        timing: TimingModel | None = None,
        n_cpus: int = 20,
        trace: Callable[[float, str, str], None] | None = None,
        max_events: int = 200_000_000,
        recorder=None,
        scheduler=None,
    ) -> None:
        if n_locks < 1 or n_channels < 0:
            raise SimulationError("engine needs at least one lock")
        self.now = 0.0
        self.timing: TimingModel = timing or ZeroTimingModel()
        self.n_cpus = max(1, n_cpus)
        self.locks = [_SimLock() for _ in range(n_locks)]
        self.channels = [_WaitChannel() for _ in range(n_channels)]
        self.processes: list[SimProcess] = []
        self.stats = EngineStats()
        self._heap: list[tuple[float, int, SimProcess]] = []
        self._seq = 0
        self._trace = trace
        self._recorder = recorder
        self._max_events = max_events
        self._scheduler = scheduler
        #: Processes currently in the ``runnable`` state, maintained
        #: incrementally at every state transition so the per-charge
        #: multiplexing factor costs O(1) instead of a scan of the
        #: process table (the single hottest line of the interpreter).
        self._runnable = 0
        # Lock transfer costs are fixed machine constants (a property of
        # the timing model, not of simulation state); sample them once
        # instead of a method call per acquire/release event.
        self._t_acquire = self.timing.acquire_cost()
        self._t_release = self.timing.release_cost()
        #: Pending self-resume: when a handler merely reschedules the
        #: process that just stepped (charge, uncontended acquire,
        #: release, wake), it parks ``(time, proc)`` here instead of
        #: pushing onto the heap.  The main loop — and the fused-section
        #: interpreter — consume it inline whenever no other pending
        #: event could fire first, turning long uncontended phases into
        #: straight-line execution with zero heap traffic.
        self._pend_t = -1.0
        self._pend_proc: SimProcess | None = None
        #: ``until`` bound of the active run() call (fast-forward must
        #: not advance the clock past it).
        self._until: float | None = None
        #: While :meth:`_run_epoch` is live, its sorted arena of pending
        #: resumes.  Handlers that would heappush a future resume (lock
        #: grants, channel wakes, spawns) insort here instead: arena and
        #: heap entries carry identical ``(time, seq)`` keys and the
        #: epoch's choose step always weighs both, so the redirect
        #: cannot reorder anything — it only removes a heappush/heappop
        #: pair per event.  ``None`` whenever the classic loop runs.
        self._epoch_arena: list | None = None

    # -- process management --------------------------------------------------

    def spawn(self, name: str, gen: ProcGen) -> SimProcess:
        """Register a process and schedule its first step at the current time."""
        proc = SimProcess(name=name, gen=gen, pid=len(self.processes))
        self.processes.append(proc)
        self._runnable += 1
        self._schedule(proc, 0.0)
        return proc

    def _schedule(self, proc: SimProcess, dt: float) -> None:
        self._seq += 1
        arena = self._epoch_arena
        if arena is not None:
            _insort(arena, (-(self.now + dt), -self._seq, proc))
            return
        self.stats.heap_pushes += 1
        heapq.heappush(self._heap, (self.now + dt, self._seq, proc))

    # -- main loop -----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run to completion (or to ``until``); returns the final time.

        Raises :class:`DeadlockError` if blocked processes remain with no
        pending event, and re-raises the first process exception (engine
        effects are interpreted strictly: a crashed process crashes the
        simulation, as a crashed Unix process would crash the benchmark).
        """
        if self._scheduler is not None:
            return self._run_controlled(until)
        self._until = until
        # Hot loop: localize everything touched per event.
        heap = self._heap
        heappop = heapq.heappop
        stats = self.stats
        step = self._step
        max_events = self._max_events
        # Epoch batching applies only to uncontrolled, untraced runs:
        # controlled mode is dispatched above (repro.check must see
        # every decision point), and traced runs take the classic loop
        # whose per-event trace emission the epoch path does not carry
        # (tracing is observational, so the simulation is identical).
        epoch = _epoch_default and self._trace is None
        while True:
            t = self._pend_t
            if t >= 0.0:
                # Uncontended fast-forward: the process that just stepped
                # is the only thing scheduled before every heap entry, so
                # resume it directly — same event count, same clock, no
                # heap push/pop.  Ties go to the heap (its entries carry
                # smaller sequence numbers than a fresh push would).
                self._pend_t = -1.0
                if (not heap or t < heap[0][0]) and (until is None or t <= until):
                    self.now = t
                    stats.events += 1
                    if stats.events > max_events:
                        raise SimulationError(f"exceeded {max_events} events")
                    step(self._pend_proc)
                    continue
                if epoch and heap and (until is None or t <= until):
                    # Heap crossing with at least two pending timelines:
                    # batch-retire the quiescent stretch without heap
                    # traffic, in exact global (time, seq) order.
                    self._run_epoch(t, self._pend_proc, until)
                    continue
                self._seq += 1
                stats.heap_pushes += 1
                _heappush(heap, (t, self._seq, self._pend_proc))
            if not heap:
                break
            if until is not None and heap[0][0] > until:
                # Stop without consuming the future event: a later run()
                # resumes exactly where this one paused.
                self.now = until
                return self.now
            t, _, proc = heappop(heap)
            stats.heap_pops += 1
            self.now = t
            stats.events += 1
            if stats.events > max_events:
                raise SimulationError(f"exceeded {max_events} events")
            state = proc.state
            if state is _DONE or state is _FAILED:
                continue
            step(proc)
        self._raise_if_stalled()
        return self.now

    def _run_controlled(self, until: float | None) -> float:
        """The schedule-controlled twin of :meth:`run`.

        Kept separate so the uncontrolled hot loop pays nothing for the
        hook.  Semantics differ in exactly one way: among the pending
        events sharing the earliest timestamp, the scheduler policy —
        not heap sequence order — picks which fires.  Everything the
        policy can choose is a legal interleaving: ties in simulated
        time are concurrency, and the default engine merely resolves
        them FIFO.
        """
        sched = self._scheduler
        attach = getattr(sched, "attach", None)
        if attach is not None:
            attach(self)
        self._until = until
        heap = self._heap
        heappop = heapq.heappop
        stats = self.stats
        while heap:
            # Drop stale entries for finished processes up front so they
            # never appear as candidates.
            while heap and heap[0][2].state in (_DONE, _FAILED):
                heappop(heap)
                stats.heap_pops += 1
            if not heap:
                break
            t0 = heap[0][0]
            if until is not None and t0 > until:
                self.now = until
                return self.now
            cands = [
                e for e in heap
                if e[0] == t0 and e[2].state not in (_DONE, _FAILED)
            ]
            cands.sort(key=lambda e: e[1])
            if len(cands) == 1:
                entry = cands[0]
            else:
                idx = sched.choose(t0, [e[2] for e in cands])
                entry = cands[idx if 0 <= idx < len(cands) else 0]
            heap.remove(entry)
            heapq.heapify(heap)
            self.now = t0
            stats.heap_pops += 1
            stats.events += 1
            if stats.events > self._max_events:
                raise SimulationError(f"exceeded {self._max_events} events")
            self._step(entry[2])
            t = self._pend_t
            if t >= 0.0:
                # Controlled mode never fast-forwards: every event goes
                # through the heap so the policy sees every choice point
                # the unfused engine would offer.
                self._pend_t = -1.0
                self._seq += 1
                stats.heap_pushes += 1
                _heappush(heap, (t, self._seq, self._pend_proc))
        self._raise_if_stalled()
        return self.now

    def _run_epoch(self, t: float, proc: SimProcess,
                   until: float | None) -> None:
        """Batch-retire a quiescent stretch of several processes.

        Entered from :meth:`run` at a heap crossing: the pending resume
        (``proc`` at time ``t``) no longer strictly precedes the heap,
        i.e. at least two timelines are pending.  The classic loop would
        now bounce every event through the heap — push the pending
        resume, pop the earliest entry, re-enter the interpreter — even
        while the processes merely interleave uncontended charges.
        Instead, pending resumes park in a small *arena*: a list of
        ``(-time, -seq, proc)`` entries kept sorted so the earliest
        ``(time, seq)`` sits at the end — O(1) to take, C-bisect to
        insert — and this loop replays each process's straight-line
        steps in exact global ``(time, seq)`` order with no heap
        traffic.  When a process enters a :class:`FusedSection`, its
        :meth:`~repro.core.effects.FusedSection.contention_horizon`
        summary prices the section's pure-compute prefix part by part
        (ulp-exact, the same float expressions ``timing.price`` would
        evaluate); if that horizon lands strictly before every other
        pending event, the whole prefix retires in one batch with zero
        intermediate ordering checks.

        Identity discipline (the figures are byte-identity-gated on it):

        * Parking consumes a fresh sequence number exactly where the
          classic loop would heappush, so every ordering decision —
          including ties, which go to the older entry — is made on the
          identical ``(time, seq)`` keys.
        * New heap entries (lock grants, channel wakes, spawns) merge by
          construction: the choose step always weighs the arena minimum
          against ``heap[0]`` and takes whichever wins.
        * Every handler call, price expression, recorder hook and stats
          update is the same code — or a line-for-line transcription —
          of the classic path, executed at the same simulated instants.
        * ``self.now``, the fused cursor ``state[1]`` and the additive
          counters (events, charges, charged_seconds, heap_pops) live in
          locals during a chain and sync before anything that can
          observe them — handler calls, ``S_CALL`` closures, generator
          resumes, dispatch — and unconditionally on exit (the
          ``finally``).  Between those points nothing reads them, so
          the deferral is invisible; only the grouping of the float
          ``charged_seconds`` accumulation changes, which no gated
          artifact consumes.

        The epoch ends when one timeline remains (the pending-resume
        slot takes over), when ``until`` is reached (the arena flushes
        back to the heap with its preserved keys, and :meth:`run` stops
        at ``until`` exactly as before), or when the program stalls or
        raises.  Controlled-scheduler and traced runs never enter (see
        :meth:`run`), so ``repro.check`` still sees every decision
        point and trace streams are emitted by the classic loop.
        """
        heap = self._heap
        stats = self.stats
        timing = self.timing
        price = timing.price
        recorder = self._recorder
        # Label profiling is enabled/disabled between runs (bench
        # profile), never mid-run; one read serves the whole epoch.
        lprof = _LABEL_PROF
        insort = _insort
        max_events = self._max_events
        arena: list = []
        ana = getattr(timing, "analytic_charge", None)
        analytic = ana is not None
        if analytic:
            t_instr, t_flop, a_cpus = ana
        until_f = _INF if until is None else until
        stats.epoch_batches += 1
        ev = stats.events
        ev0 = ev
        # Additive counters batched into locals; folded back in `finally`.
        n_ch = 0
        t_ch = 0.0
        n_pop = 0
        now = self.now
        # `cross` caches the earliest competing pending-event time
        # (arena or heap; +inf when the active process is the sole
        # timeline), so the hot continue-inline/park test is a single
        # float comparison.  Arena and heap only change at handler
        # calls, parks and chooses — `cross` is refreshed exactly there.
        cross = heap[0][0] if heap else _INF
        self._epoch_arena = arena
        try:
            while True:
                # ---- A) decide which event fires next --------------------
                if proc is not None:
                    if cross == _INF:
                        # Sole surviving timeline: hand back to the
                        # classic pending-resume slot; the epoch is over.
                        self._pend_t = t
                        self._pend_proc = proc
                        return
                    if t < cross and t <= until_f:
                        ev += 1
                        if ev > max_events:
                            now = t
                            raise SimulationError(
                                f"exceeded {max_events} events")
                    else:
                        # Park exactly like a classic heappush: fresh
                        # sequence number, so ties resolve to the older
                        # entry — identical FIFO order.
                        self._seq += 1
                        insort(arena, (-t, -self._seq, proc))
                        if t < cross:
                            cross = t  # until-bounded park is the new min
                        proc = None
                if proc is None:
                    while True:
                        if arena:
                            e = arena[-1]
                            at = -e[0]
                            if heap:
                                h0 = heap[0]
                                ht = h0[0]
                                take_heap = ht < at or (
                                    ht == at and h0[1] < -e[1])
                            else:
                                take_heap = False
                        elif heap:
                            h0 = heap[0]
                            take_heap = True
                        else:
                            # Nothing pending anywhere; run() falls
                            # through to the stall detector.
                            return
                        if take_heap:
                            tn = h0[0]
                            if tn > until_f:
                                self._flush_arena(arena)
                                return
                            _heappop(heap)
                            n_pop += 1
                            cand = h0[2]
                        else:
                            tn = at
                            if tn > until_f:
                                # Bound reached: everything pending goes
                                # back on the heap with its preserved
                                # (time, seq) keys; run() then stops at
                                # `until` exactly as classic stepping
                                # would.
                                self._flush_arena(arena)
                                return
                            arena.pop()
                            cand = e[2]
                        ev += 1
                        if ev > max_events:
                            now = tn
                            raise SimulationError(
                                f"exceeded {max_events} events")
                        st = cand.state
                        if st is _DONE or st is _FAILED:
                            now = tn  # classic advances the clock here too
                            continue
                        proc = cand
                        t = tn
                        break
                    if arena:
                        cross = -arena[-1][0]
                        if heap and heap[0][0] < cross:
                            cross = heap[0][0]
                    elif heap:
                        cross = heap[0][0]
                    else:
                        cross = _INF
                # ---- B) execute one event of `proc` at time `t` ----------
                now = t
                if proc._copying:
                    # The charge that just completed was a copy phase.
                    proc._copying = False
                    timing.copy_finished()
                # The event that resumed `proc` is counted but not yet
                # spent — _advance_fused's `external` flag, same meaning.
                external = True
                # `_runnable` changes only in handlers (block/grant/wake),
                # at completion and at spawn — never between two charge
                # steps — so one read is exact until the next handler
                # call or generator resume (both refresh it).
                r = self._runnable
                state = proc._fused
                while True:  # same-event chain: fused steps + gen resumes
                    if state is not None:
                        # Fused-section replay: the epoch twin of
                        # _advance_fused (see its docstring for the
                        # accounting discipline transcribed here).
                        steps = state[0]
                        n = len(steps)
                        idx = state[1]
                        parked = False
                        while True:
                            if idx >= n:
                                proc._fused = None
                                proc._inbox = state[2]
                                if not external:
                                    ev += 1
                                external = True
                                state = None
                                break  # resume the generator, same event
                            op, arg = steps[idx]
                            idx += 1
                            if op == 5:  # S_CALL
                                state[1] = idx
                                self.now = now
                                d = arg()
                                if d is not None:
                                    k = d[0]
                                    if k == 0:  # D_RESULT
                                        state[2] = d[1]
                                    elif k == 1:  # D_SPLICE
                                        steps = steps[:idx] + d[1] + steps[idx:]
                                        state[0] = steps
                                        n = len(steps)
                                    elif k == 2:  # D_RESULT_SPLICE
                                        state[2] = d[1]
                                        steps = steps[:idx] + d[2] + steps[idx:]
                                        state[0] = steps
                                        n = len(steps)
                                    else:  # D_BAIL
                                        proc._fused = None
                                        proc._inbox = d[1]
                                        if not external:
                                            ev += 1
                                        external = True
                                        state = None
                                        break
                                continue
                            if external:
                                external = False
                            else:
                                ev += 1
                            if op == 0:  # S_CHARGE (_do_charge inlined)
                                work = arg
                                if analytic and not (
                                        work.copy_bytes or work.blocks
                                        or work.page_bytes):
                                    # Bit-exact transcription of the
                                    # pure-compute path of timing.price.
                                    dt = work.instrs * t_instr
                                    if work.flops:
                                        dt += work.flops * t_flop
                                    if r > a_cpus:
                                        dt *= r / a_cpus
                                else:
                                    dt = price(work, r)
                                    if work.copy_bytes > 0:
                                        proc._copying = True
                                        timing.copy_started()
                                n_ch += 1
                                t_ch += dt
                                if lprof is not None:
                                    e = lprof.get(work.label)
                                    if e is None:
                                        lprof[work.label] = [1, dt]
                                    else:
                                        e[0] += 1
                                        e[1] += dt
                                if recorder is not None:
                                    recorder.on_charge(
                                        now + dt, proc.name, work.label,
                                        dt, work.instrs, work.flops)
                                t2 = now + dt
                            elif op == 1:  # S_MANY (_do_charge_many inlined)
                                works = arg
                                t2 = now
                                for work in works:
                                    if analytic and not (
                                            work.copy_bytes or work.blocks
                                            or work.page_bytes):
                                        dt = work.instrs * t_instr
                                        if work.flops:
                                            dt += work.flops * t_flop
                                        if r > a_cpus:
                                            dt *= r / a_cpus
                                    else:
                                        dt = price(work, r)
                                    n_ch += 1
                                    t_ch += dt
                                    t2 = t2 + dt
                                    if lprof is not None:
                                        e = lprof.get(work.label)
                                        if e is None:
                                            lprof[work.label] = [1, dt]
                                        else:
                                            e[0] += 1
                                            e[1] += dt
                                    if recorder is not None:
                                        recorder.on_charge(
                                            t2, proc.name, work.label,
                                            dt, work.instrs, work.flops)
                                ev += len(works) - 1
                            else:
                                state[1] = idx
                                self.now = now
                                if op == 2:  # S_ACQ
                                    self._do_acquire(proc, arg)
                                elif op == 3:  # S_REL
                                    self._do_release(proc, arg)
                                elif op == 4:  # S_WAKE
                                    self._do_wake(proc, arg)
                                else:
                                    raise SimulationError(
                                        f"bad fused step opcode {op!r}")
                                t2 = self._pend_t
                                if t2 < 0.0:
                                    # Contended acquire: proc sits in the
                                    # lock's waiter FIFO mid-section; the
                                    # grant resumes it (via the arena)
                                    # and the choose step merges it back.
                                    parked = True
                                    break
                                self._pend_t = -1.0
                                # The handler may have granted/woken other
                                # processes into the arena (and changed
                                # _runnable): refresh cross and r.
                                r = self._runnable
                                if arena:
                                    cross = -arena[-1][0]
                                    if heap and heap[0][0] < cross:
                                        cross = heap[0][0]
                                elif heap:
                                    cross = heap[0][0]
                                else:
                                    cross = _INF
                            # Continue inline only while strictly earliest
                            # among arena, heap and the until bound.
                            if t2 >= cross or t2 > until_f:
                                state[1] = idx
                                self._seq += 1
                                insort(arena, (-t2, -self._seq, proc))
                                if t2 < cross:
                                    cross = t2
                                parked = True
                                break
                            now = t2
                            if proc._copying:
                                proc._copying = False
                                timing.copy_finished()
                        if parked:
                            proc = None
                            break
                        continue  # state is None: resume the generator
                    self.now = now  # generator bodies may observe the clock
                    try:
                        if proc._throw is not None:
                            exc, proc._throw = proc._throw, None
                            effect = proc.gen.throw(exc)
                        else:
                            value, proc._inbox = proc._inbox, None
                            effect = proc.gen.send(value)
                    except StopIteration as stop:
                        proc.state = _DONE
                        proc.result = stop.value
                        self._runnable -= 1
                        proc = None
                        break
                    except BaseException as exc:
                        proc.state = _FAILED
                        proc.error = exc
                        self._runnable -= 1
                        raise
                    # The body may have spawned processes (into the arena,
                    # at the synced clock): refresh r; cross refreshes in
                    # every effect branch below before it is next used.
                    r = self._runnable
                    cls = effect.__class__
                    if cls is FusedSection:
                        state = proc._fused = [effect.steps, 0, None]
                        if arena:
                            cross = -arena[-1][0]
                            if heap and heap[0][0] < cross:
                                cross = heap[0][0]
                        elif heap:
                            cross = heap[0][0]
                        else:
                            cross = _INF
                        if analytic:
                            # Contention-horizon batch: the section's
                            # pure-compute prefix has a memoized base
                            # duration (pricing pure work is a function
                            # of the Work and the analytic constants
                            # only), so deciding whether the whole
                            # prefix fits before the next competing
                            # event costs one multiply and two compares.
                            pc = effect._priced
                            if pc is None or pc[0] is not ana:
                                parts, stop_idx, _stop_op = \
                                    effect.contention_horizon()
                                base = []
                                tot = 0.0
                                for w in parts:
                                    b = w.instrs * t_instr
                                    if w.flops:
                                        b += w.flops * t_flop
                                    base.append(b)
                                    tot += b
                                pc = (ana, parts, stop_idx,
                                      tuple(base), tot)
                                object.__setattr__(effect, "_priced", pc)
                            parts = pc[1]
                            if parts:
                                if r > a_cpus:
                                    factor = r / a_cpus
                                    te = now + pc[4] * factor
                                else:
                                    factor = 0.0
                                    te = now + pc[4]
                                # Conservative upper bound: the gate sum
                                # may differ from the exact per-part
                                # accumulation by a few ulps; pad well
                                # past that so a pass guarantees every
                                # exact intermediate time stays strictly
                                # below cross.  A pad-induced reject
                                # merely takes the per-step path.
                                te += te * 1e-12
                                if te < cross and te <= until_f:
                                    base = pc[3]
                                    if lprof is None and recorder is None:
                                        # Unobserved replay: only the
                                        # exact sequential clock
                                        # accumulation remains.
                                        if factor:
                                            for dt in base:
                                                dt *= factor
                                                t_ch += dt
                                                now = now + dt
                                        else:
                                            for dt in base:
                                                t_ch += dt
                                                now = now + dt
                                        n_ch += len(parts)
                                    else:
                                        i = 0
                                        for work in parts:
                                            dt = base[i]
                                            i += 1
                                            if factor:
                                                dt *= factor
                                            n_ch += 1
                                            t_ch += dt
                                            now = now + dt
                                            if lprof is not None:
                                                e = lprof.get(work.label)
                                                if e is None:
                                                    lprof[work.label] = [1, dt]
                                                else:
                                                    e[0] += 1
                                                    e[1] += dt
                                            if recorder is not None:
                                                recorder.on_charge(
                                                    now, proc.name,
                                                    work.label, dt,
                                                    work.instrs, work.flops)
                                    ev += len(parts) - 1
                                    external = False
                                    state[1] = pc[2]
                        continue
                    if cls is Charge:  # _do_charge inlined
                        work = effect.work
                        if analytic and not (work.copy_bytes or work.blocks
                                             or work.page_bytes):
                            dt = work.instrs * t_instr
                            if work.flops:
                                dt += work.flops * t_flop
                            if r > a_cpus:
                                dt *= r / a_cpus
                        else:
                            dt = price(work, r)
                            if work.copy_bytes > 0:
                                proc._copying = True
                                timing.copy_started()
                        n_ch += 1
                        t_ch += dt
                        if lprof is not None:
                            e = lprof.get(work.label)
                            if e is None:
                                lprof[work.label] = [1, dt]
                            else:
                                e[0] += 1
                                e[1] += dt
                        if recorder is not None:
                            recorder.on_charge(now + dt, proc.name,
                                               work.label, dt,
                                               work.instrs, work.flops)
                        t2 = now + dt
                    elif cls is ChargeMany:  # _do_charge_many inlined
                        works = effect.works
                        t2 = now
                        for work in works:
                            if analytic and not (
                                    work.copy_bytes or work.blocks
                                    or work.page_bytes):
                                dt = work.instrs * t_instr
                                if work.flops:
                                    dt += work.flops * t_flop
                                if r > a_cpus:
                                    dt *= r / a_cpus
                            else:
                                dt = price(work, r)
                            n_ch += 1
                            t_ch += dt
                            t2 = t2 + dt
                            if lprof is not None:
                                e = lprof.get(work.label)
                                if e is None:
                                    lprof[work.label] = [1, dt]
                                else:
                                    e[0] += 1
                                    e[1] += dt
                            if recorder is not None:
                                recorder.on_charge(t2, proc.name, work.label,
                                                   dt, work.instrs, work.flops)
                        ev += len(works) - 1
                    elif cls is Acquire:
                        self._do_acquire(proc, effect.lock_id)
                        t2 = self._pend_t
                        if t2 >= 0.0:
                            self._pend_t = -1.0
                    elif cls is Release:
                        self._do_release(proc, effect.lock_id)
                        t2 = self._pend_t
                        if t2 >= 0.0:
                            self._pend_t = -1.0
                    elif cls is WaitOn:
                        self._do_wait(proc, effect.chan, effect.lock_id)
                        t2 = self._pend_t  # blocked: stays empty
                    elif cls is Wake:
                        self._do_wake(proc, effect.chan)
                        t2 = self._pend_t
                        if t2 >= 0.0:
                            self._pend_t = -1.0
                    else:
                        # Effect subclasses and the non-effect error path
                        # (_dispatch may update stats.events for a
                        # ChargeMany subclass; keep the local in sync).
                        stats.events = ev
                        self._dispatch(proc, effect)
                        ev = stats.events
                        t2 = self._pend_t
                        if t2 >= 0.0:
                            self._pend_t = -1.0
                    # A handler branch (or a spawn in the body) may have
                    # granted/woken processes into the arena: refresh
                    # cross before reusing it (charge branches leave
                    # arena and heap untouched, so the unconditional
                    # refresh is a no-op for them).
                    if arena:
                        cross = -arena[-1][0]
                        if heap and heap[0][0] < cross:
                            cross = heap[0][0]
                    elif heap:
                        cross = heap[0][0]
                    else:
                        cross = _INF
                    if t2 < 0.0:
                        proc = None  # blocked; a wake/grant resumes it
                        break
                    # Event done at t2: continue the chain inline while
                    # strictly earliest (same test as step A), else park.
                    if t2 < cross and t2 <= until_f:
                        ev += 1
                        if ev > max_events:
                            now = t2
                            raise SimulationError(
                                f"exceeded {max_events} events")
                        now = t2
                        if proc._copying:
                            proc._copying = False
                            timing.copy_finished()
                        external = True
                        continue
                    if cross == _INF:
                        # Sole surviving timeline: back to the pending-
                        # resume slot; the epoch is over.
                        self._pend_t = t2
                        self._pend_proc = proc
                        return
                    self._seq += 1
                    insort(arena, (-t2, -self._seq, proc))
                    if t2 < cross:
                        cross = t2
                    proc = None
                    break
        finally:
            self._epoch_arena = None
            self.now = now
            stats.events = ev
            stats.epoch_events += ev - ev0
            stats.charges += n_ch
            stats.charged_seconds += t_ch
            stats.heap_pops += n_pop
            if arena:
                # until-bound or exception exit: put pending resumes back
                # on the heap so engine state matches the classic loop's
                # (which would have had them there all along).
                self._flush_arena(arena)

    def _flush_arena(self, arena: list) -> None:
        """Return epoch-arena entries to the heap, keys preserved."""
        heap = self._heap
        stats = self.stats
        while arena:
            nt, ns, p = arena.pop()
            stats.heap_pushes += 1
            _heappush(heap, (-nt, -ns, p))

    def _raise_if_stalled(self) -> None:
        """Raise :class:`DeadlockError` if blocked processes remain."""
        blocked = [p for p in self.processes if p.state in (_WAIT_LOCK, _WAIT_CHAN)]
        if blocked:
            detail = ", ".join(
                f"{p.name}({p.state}"
                + (f" lock={p._wait_lock}" if p._wait_lock is not None else "")
                + ")"
                for p in blocked
            )
            raise DeadlockError(f"no pending events but blocked: {detail}")

    def results(self) -> dict[str, object]:
        """Map process name → generator return value (after :meth:`run`)."""
        return {p.name: p.result for p in self.processes}

    # -- single step ----------------------------------------------------------

    def _step(self, proc: SimProcess) -> None:
        # A loop rather than a straight line: completing a FusedSection
        # resumes the generator within the same event, and the effect it
        # yields next (possibly another FusedSection) dispatches here too.
        while True:
            if proc._copying:
                # The charge that just completed was a copy phase.
                proc._copying = False
                self.timing.copy_finished()
            if proc._fused is not None and not self._advance_fused(proc):
                return
            try:
                if proc._throw is not None:
                    exc, proc._throw = proc._throw, None
                    effect = proc.gen.throw(exc)
                else:
                    value, proc._inbox = proc._inbox, None
                    effect = proc.gen.send(value)
            except StopIteration as stop:
                proc.state = _DONE
                proc.result = stop.value
                self._runnable -= 1
                return
            except BaseException as exc:
                proc.state = _FAILED
                proc.error = exc
                self._runnable -= 1
                raise
            # Type-keyed dispatch, most frequent effect first.  Exact class
            # checks (not isinstance chains) are the common case; effect
            # subclasses fall through to the isinstance path in _dispatch.
            cls = effect.__class__
            if cls is FusedSection:
                # The steps tuple is shared with the (possibly cached)
                # effect and never mutated: a splice replaces the whole
                # tuple in the state cell instead of editing in place.
                proc._fused = [effect.steps, 0, None]
                if self._advance_fused(proc):
                    continue
                return
            if self._trace is not None:
                self._dispatch(proc, effect)
            elif cls is Charge:
                self._do_charge(proc, effect.work)
            elif cls is Acquire:
                self._do_acquire(proc, effect.lock_id)
            elif cls is Release:
                self._do_release(proc, effect.lock_id)
            elif cls is WaitOn:
                self._do_wait(proc, effect.chan, effect.lock_id)
            elif cls is Wake:
                self._do_wake(proc, effect.chan)
            elif cls is ChargeMany:
                self._do_charge_many(proc, effect.works)
            else:
                self._dispatch(proc, effect)
            return

    def _advance_fused(self, proc: SimProcess) -> bool:
        """Execute a :class:`FusedSection`'s remaining steps.

        Returns ``True`` when the generator should be resumed *now*
        (section complete, or a call bailed), ``False`` when the process
        parked (a continuation was scheduled, or it blocked in a lock's
        FIFO and the grant will resume the section).

        Identity discipline — each time-advancing step:

        * runs through the *same* effect handler the unfused engine
          would use, so pricing, statistics, recorder hooks and
          lock/channel state transitions are shared code, not replicas
          (``S_CHARGE`` is the one exception: its handler body is
          transcribed inline below, line for line, because charges are
          the majority of all fused steps);
        * costs exactly one ``stats.events`` tick.  On entry, the event
          that resumed us (heap pop or inline fast-forward) has been
          counted but not yet spent; the first time-advancing step
          consumes it, later ones count their own.  Completing or
          bailing with no unspent event adds the tick the generator
          resume would have cost as its own heap pop;
        * executes at the completion instant of the previous step —
          the same clock value at which the unfused generator's body
          would run between the two yields.

        Steps continue inline only while the next resume time strictly
        precedes every heap entry (ties go to the heap: existing entries
        hold smaller sequence numbers than a fresh push would get, so
        FIFO order is preserved).  On contention — the pending slot left
        empty because :meth:`_do_acquire` parked us — the section
        freezes mid-way and the lock grant resumes it step by step, the
        fall-back the fusion guard promises.  Under a controlled
        scheduler every step parks, so the policy sees the identical
        choice points as unfused stepping.
        """
        state = proc._fused
        steps = state[0]
        n = len(steps)
        idx = state[1]
        stats = self.stats
        heap = self._heap
        trace = self._trace
        until = self._until
        ctl = self._scheduler is not None
        timing = self.timing
        recorder = self._recorder
        external = True
        now = self.now
        while True:
            if idx >= n:
                proc._fused = None
                proc._inbox = state[2]
                if not external:
                    stats.events += 1
                return True
            op, arg = steps[idx]
            idx += 1
            state[1] = idx
            if op == 5:  # S_CALL: body code, free, at the current instant
                d = arg()
                if d is not None:
                    k = d[0]
                    if k == 0:  # D_RESULT
                        state[2] = d[1]
                    elif k == 1:  # D_SPLICE
                        steps = steps[:idx] + d[1] + steps[idx:]
                        state[0] = steps
                        n = len(steps)
                    elif k == 2:  # D_RESULT_SPLICE
                        state[2] = d[1]
                        steps = steps[:idx] + d[2] + steps[idx:]
                        state[0] = steps
                        n = len(steps)
                    else:  # D_BAIL
                        proc._fused = None
                        proc._inbox = d[1]
                        if not external:
                            stats.events += 1
                        return True
                continue
            if external:
                external = False
            else:
                stats.events += 1
            if op == 0:  # S_CHARGE — _do_charge inlined (hottest step kind)
                if trace is not None:
                    trace(now, proc.name, f"Charge(work={arg!r})")
                dt = timing.price(arg, self._runnable)
                if arg.copy_bytes > 0:
                    proc._copying = True
                    timing.copy_started()
                stats.charges += 1
                stats.charged_seconds += dt
                if _LABEL_PROF is not None:
                    e = _LABEL_PROF.get(arg.label)
                    if e is None:
                        _LABEL_PROF[arg.label] = [1, dt]
                    else:
                        e[0] += 1
                        e[1] += dt
                if recorder is not None:
                    recorder.on_charge(now + dt, proc.name, arg.label,
                                       dt, arg.instrs, arg.flops)
                t = now + dt
            else:
                if op == 2:  # S_ACQ
                    if trace is not None:
                        trace(now, proc.name, f"Acquire(lock_id={arg})")
                    self._do_acquire(proc, arg)
                elif op == 3:  # S_REL
                    if trace is not None:
                        trace(now, proc.name, f"Release(lock_id={arg})")
                    self._do_release(proc, arg)
                elif op == 1:  # S_MANY (handler traces per part itself)
                    self._do_charge_many(proc, arg)
                elif op == 4:  # S_WAKE
                    if trace is not None:
                        trace(now, proc.name, f"Wake(chan={arg})")
                    self._do_wake(proc, arg)
                else:
                    raise SimulationError(f"bad fused step opcode {op!r}")
                t = self._pend_t
                if t < 0.0:
                    # Contended acquire: we are in the lock's waiter FIFO
                    # with the index already past the acquire step; the
                    # grant's heap entry restarts this interpreter.
                    return False
                self._pend_t = -1.0
            if ctl or (heap and heap[0][0] <= t) or (until is not None and t > until):
                if (_epoch_default and not ctl and trace is None
                        and heap and heap[0][0] <= t
                        and (until is None or t <= until)):
                    # Heap crossing mid-section: enter the epoch batcher
                    # instead of bouncing through the heap.  Step A of
                    # _run_epoch parks us with a fresh sequence number —
                    # exactly the heappush below — and then retires the
                    # whole quiescent stretch arena-side.
                    self._run_epoch(t, proc, until)
                    return False
                self._seq += 1
                stats.heap_pushes += 1
                _heappush(heap, (t, self._seq, proc))
                return False
            self.now = now = t
            if proc._copying:
                proc._copying = False
                timing.copy_finished()

    def _dispatch(self, proc: SimProcess, effect: object) -> None:
        """Traced / subclass dispatch path (the pre-fast-path semantics)."""
        if self._trace is not None and not isinstance(effect, ChargeMany):
            self._trace(self.now, proc.name, repr(effect))
        if isinstance(effect, Charge):
            self._do_charge(proc, effect.work)
        elif isinstance(effect, Acquire):
            self._do_acquire(proc, effect.lock_id)
        elif isinstance(effect, Release):
            self._do_release(proc, effect.lock_id)
        elif isinstance(effect, WaitOn):
            self._do_wait(proc, effect.chan, effect.lock_id)
        elif isinstance(effect, Wake):
            self._do_wake(proc, effect.chan)
        elif isinstance(effect, ChargeMany):
            # Traced per part (as Charge lines) inside the handler, so
            # per-label trace analyses see the same stream as unfused.
            self._do_charge_many(proc, effect.works)
        else:
            proc.state = _FAILED
            self._runnable -= 1
            err = SimulationError(
                f"process {proc.name!r} yielded non-effect {effect!r}"
            )
            proc.error = err
            raise err

    # -- effect handlers -------------------------------------------------------

    def _do_charge(self, proc: SimProcess, work: Work) -> None:
        dt = self.timing.price(work, self._runnable)
        if work.copy_bytes > 0:
            proc._copying = True
            self.timing.copy_started()
        stats = self.stats
        stats.charges += 1
        stats.charged_seconds += dt
        if _LABEL_PROF is not None:
            e = _LABEL_PROF.get(work.label)
            if e is None:
                _LABEL_PROF[work.label] = [1, dt]
            else:
                e[0] += 1
                e[1] += dt
        if self._recorder is not None:
            # Stamp the charge at its end so exported spans cover
            # [now, now + dt] once the recorder subtracts the duration.
            self._recorder.on_charge(self.now + dt, proc.name, work.label,
                                     dt, work.instrs, work.flops)
        self._pend_t = self.now + dt
        self._pend_proc = proc

    def _do_charge_many(self, proc: SimProcess, works: tuple[Work, ...]) -> None:
        """Price several adjacent charges as one scheduler event.

        Each part is priced separately (in order) and the clock advances
        by ``((now + dt1) + dt2) ...`` — the *same float expression* the
        equivalent back-to-back :class:`Charge` events would evaluate, so
        resume timestamps are bit-identical, not merely close (summing
        the dts first would differ in the last ulp and, across millions
        of events, drift figure values).  Statistics, recorder hooks and
        trace lines are emitted per part with the unfused timestamps.
        See :class:`~repro.core.effects.ChargeMany` for the
        (compute-only) restriction that makes this an identity.
        """
        timing = self.timing
        runnable = self._runnable
        stats = self.stats
        recorder = self._recorder
        trace = self._trace
        t = self.now
        for work in works:
            if trace is not None:
                self._trace(t, proc.name, f"Charge(work={work!r})")
            dt = timing.price(work, runnable)
            stats.charges += 1
            stats.charged_seconds += dt
            t = t + dt
            if _LABEL_PROF is not None:
                e = _LABEL_PROF.get(work.label)
                if e is None:
                    _LABEL_PROF[work.label] = [1, dt]
                else:
                    e[0] += 1
                    e[1] += dt
            if recorder is not None:
                recorder.on_charge(t, proc.name, work.label,
                                   dt, work.instrs, work.flops)
        stats.events += len(works) - 1
        # Resume at the absolute accumulated time (not now + total).
        self._pend_t = t
        self._pend_proc = proc

    def _lock(self, lock_id: int) -> _SimLock:
        try:
            return self.locks[lock_id]
        except IndexError:
            raise SimulationError(f"lock id {lock_id} out of range") from None

    def _chan(self, chan: int) -> _WaitChannel:
        try:
            return self.channels[chan]
        except IndexError:
            raise SimulationError(f"wait channel {chan} out of range") from None

    def _do_acquire(self, proc: SimProcess, lock_id: int) -> None:
        try:
            lock = self.locks[lock_id]
        except IndexError:
            raise SimulationError(f"lock id {lock_id} out of range") from None
        self.stats.lock_acquires += 1
        if lock.owner is None:
            lock.owner = proc
            lock.acquired_at = self.now
            if self._recorder is not None:
                self._recorder.on_acquire(self.now, proc.name, lock_id,
                                          0.0, contended=False)
            self._pend_t = self.now + self._t_acquire
            self._pend_proc = proc
        else:
            if lock.owner is proc:
                raise SimulationError(
                    f"process {proc.name!r} re-acquired lock {lock_id} (self-deadlock)"
                )
            self.stats.lock_contended += 1
            proc.state = _WAIT_LOCK
            self._runnable -= 1
            proc._wait_lock = lock_id
            proc._blocked_since = self.now
            lock.waiters.append(proc)

    def _do_release(self, proc: SimProcess, lock_id: int) -> None:
        try:
            lock = self.locks[lock_id]
        except IndexError:
            raise SimulationError(f"lock id {lock_id} out of range") from None
        if lock.owner is not proc:
            raise SimulationError(
                f"process {proc.name!r} released lock {lock_id} it does not own"
            )
        if self._recorder is not None:
            self._recorder.on_release(self.now, proc.name, lock_id,
                                      self.now - lock.acquired_at)
        if lock.waiters:
            self._grant_next(lock_id, lock)
        else:
            lock.owner = None
        self._pend_t = self.now + self._t_release
        self._pend_proc = proc

    def _grant_next(self, lock_id: int, lock: _SimLock) -> None:
        """Hand the lock to its next FIFO waiter (or leave it free)."""
        if lock.waiters:
            nxt = lock.waiters.popleft()
            lock.owner = nxt
            lock.acquired_at = self.now
            nxt.state = _RUNNABLE
            self._runnable += 1
            nxt._wait_lock = None
            nxt.lock_wait_time += self.now - nxt._blocked_since
            if self._recorder is not None:
                self._recorder.on_acquire(
                    self.now, nxt.name, lock_id,
                    self.now - nxt._blocked_since, contended=True,
                    counted=not nxt._implicit_reacquire,
                )
            nxt._implicit_reacquire = False
            self._seq += 1
            arena = self._epoch_arena
            if arena is not None:
                _insort(arena,
                        (-(self.now + self._t_acquire), -self._seq, nxt))
            else:
                self.stats.heap_pushes += 1
                _heappush(self._heap,
                          (self.now + self._t_acquire, self._seq, nxt))
        else:
            lock.owner = None

    def _do_wait(self, proc: SimProcess, chan: int, lock_id: int) -> None:
        lock = self._lock(lock_id)
        if lock.owner is not proc:
            raise SimulationError(
                f"process {proc.name!r} waits on channel {chan} "
                f"without holding lock {lock_id}"
            )
        channel = self._chan(chan)
        if self._recorder is not None:
            # WaitOn releases the circuit lock on the caller's behalf;
            # end the hold span without counting a Release effect.
            self._recorder.on_release(self.now, proc.name, lock_id,
                                      self.now - lock.acquired_at,
                                      counted=False)
        self._grant_next(lock_id, lock)
        proc.state = _WAIT_CHAN
        self._runnable -= 1
        proc._wait_lock = lock_id
        proc._blocked_since = self.now
        channel.sleepers.append(proc)

    def _do_wake(self, proc: SimProcess, chan: int) -> None:
        channel = self._chan(chan)
        n = len(channel.sleepers)
        self.stats.wakes += 1
        self.stats.woken += n
        if self._recorder is not None:
            self._recorder.on_wake(self.now, proc.name, chan, n)
        while channel.sleepers:
            sleeper = channel.sleepers.popleft()
            lock_id = sleeper._wait_lock
            assert lock_id is not None
            lock = self._lock(lock_id)
            # Split the sleeper's blocked interval here: what has elapsed
            # was channel sleep; whatever follows (if the lock is busy)
            # is lock wait.  The lock_wait_time total is unchanged — it
            # still accumulates the whole blocked interval.
            slept = self.now - sleeper._blocked_since
            sleeper.lock_wait_time += slept
            sleeper._blocked_since = self.now
            if self._recorder is not None:
                self._recorder.on_chan_wait(self.now, sleeper.name, chan, slept)
            # The sleeper must reacquire its lock before resuming: enter
            # the lock's FIFO (or take it if free).  Its WaitOn resumes
            # only once the lock is held again.
            if lock.owner is None:
                lock.owner = sleeper
                lock.acquired_at = self.now
                sleeper.state = _RUNNABLE
                self._runnable += 1
                sleeper._wait_lock = None
                if self._recorder is not None:
                    self._recorder.on_acquire(self.now, sleeper.name, lock_id,
                                              0.0, contended=False,
                                              counted=False)
                self._seq += 1
                arena = self._epoch_arena
                if arena is not None:
                    _insort(arena,
                            (-(self.now + self._t_acquire), -self._seq,
                             sleeper))
                else:
                    self.stats.heap_pushes += 1
                    _heappush(self._heap,
                              (self.now + self._t_acquire, self._seq,
                               sleeper))
            else:
                sleeper.state = _WAIT_LOCK
                sleeper._implicit_reacquire = True
                lock.waiters.append(sleeper)
        self._pend_t = self.now + self.timing.wake_cost(n)
        self._pend_proc = proc
