"""Simulated Sequent Balance 21000: discrete-event engine + timing models.

The machine substitutes for the paper's hardware testbed (DESIGN.md §2):
:class:`~repro.machine.engine.Engine` runs coroutine processes in virtual
time; :class:`~repro.machine.cpu.BalanceTiming` prices their work using
the CPU, shared-bus (:mod:`~repro.machine.bus`) and paging
(:mod:`~repro.machine.vm`) models of
:class:`~repro.machine.balance.MachineConfig`.
"""

from .balance import BALANCE_21000, MachineConfig
from .bus import BusModel
from .cache import CacheModel
from .cpu import BalanceTiming
from .engine import DeadlockError, Engine, SimProcess, SimulationError, ZeroTimingModel
from .stats import MachineReport, collect_report
from .trace import TraceEvent, Tracer
from .vm import VmModel

__all__ = [
    "BALANCE_21000",
    "MachineConfig",
    "BusModel",
    "CacheModel",
    "VmModel",
    "BalanceTiming",
    "Engine",
    "SimProcess",
    "DeadlockError",
    "SimulationError",
    "ZeroTimingModel",
    "MachineReport",
    "collect_report",
    "Tracer",
    "TraceEvent",
]
