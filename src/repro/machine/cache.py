"""Write-through cache model for the simulated Balance 21000.

Paper §4: "Each processor has a 8K byte, write-through cache and an 8K
byte local memory."  For MPF traffic the cache matters in one place:
the *reads* of message blocks during fill/drain loops.  Writes always
go to memory (write-through), but whether block reads hit depends on
how much of the block pool is being cycled:

* a single loop-back process reuses the same few blocks (the LIFO free
  list keeps them hot) — reads hit;
* deep queues and high fan-out cycle a working set larger than 8 KB —
  reads miss and stall on the bus.

The model: when the live block-pool footprint exceeds the cache size, a
proportional fraction of per-block work pays a miss stall.  The effect
is deliberately second-order (a few microseconds per 10-byte block
against ~370 charged instructions) — notably, the paper's own analysis
never invokes the cache, and the ``ablation_cache`` benchmark confirms
the model agrees: disabling it moves no curve by more than a few
percent.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["CacheModel"]


class CacheModel:
    """Read-miss surcharge for block-chain traffic."""

    __slots__ = ("cache_bytes", "miss_seconds", "enabled", "_demand",
                 "stall_time", "stalled_blocks")

    def __init__(self, cache_bytes: int, miss_seconds: float,
                 enabled: bool = True) -> None:
        if cache_bytes < 1 or miss_seconds < 0:
            raise ValueError("invalid cache model parameters")
        self.cache_bytes = cache_bytes
        self.miss_seconds = miss_seconds
        self.enabled = enabled
        self._demand: Callable[[], int] = lambda: 0
        #: Simulated seconds lost to read-miss stalls (statistics).
        self.stall_time = 0.0
        #: Block-equivalents that stalled (statistics, fractional).
        self.stalled_blocks = 0.0

    def set_demand_source(self, fn: Callable[[], int]) -> None:
        """Wire the live block-pool footprint signal (bytes)."""
        self._demand = fn

    def miss_fraction(self) -> float:
        """Fraction of block reads missing the cache right now."""
        if not self.enabled:
            return 0.0
        demand = self._demand()
        if demand <= self.cache_bytes or demand <= 0:
            return 0.0
        return (demand - self.cache_bytes) / demand

    def penalty(self, blocks: int) -> float:
        """Stall surcharge for touching ``blocks`` message blocks."""
        if not self.enabled or blocks <= 0:
            return 0.0
        frac = self.miss_fraction()
        if frac <= 0.0:
            return 0.0
        stalled = blocks * frac
        self.stalled_blocks += stalled
        dt = stalled * self.miss_seconds
        self.stall_time += dt
        return dt
