"""Aggregated machine statistics for a finished simulation.

Benchmarks and tests read one :class:`MachineReport` instead of poking at
engine, bus and VM internals.  Everything here is observational: building
a report does not perturb the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpu import BalanceTiming
from .engine import Engine

__all__ = [
    "MachineReport",
    "collect_report",
    "enable_report_profile",
    "disable_report_profile",
]

#: When enabled (``python -m repro.bench profile --top N``), every
#: :func:`collect_report` folds its engine's heap-crossing counters into
#: this accumulator, summing across all the simulations a figure runs —
#: the engine-level analog of the effect-label profile.
_REPORT_PROF: dict[str, int] | None = None


def enable_report_profile() -> dict[str, int]:
    """Start accumulating heap-crossing counters across reports."""
    global _REPORT_PROF
    _REPORT_PROF = {
        "runs": 0,
        "events": 0,
        "heap_pushes": 0,
        "heap_pops": 0,
        "epoch_batches": 0,
        "epoch_events": 0,
    }
    return _REPORT_PROF


def disable_report_profile() -> None:
    """Stop accumulating (drops the reference; caller keeps the dict)."""
    global _REPORT_PROF
    _REPORT_PROF = None


@dataclass(frozen=True)
class MachineReport:
    """A snapshot of simulator counters after a run."""

    #: Final simulated time, seconds.
    sim_seconds: float
    #: Events the engine dispatched.
    events: int
    #: Total priced work, seconds (sum of all charges before queuing).
    charged_seconds: float
    #: Lock acquisitions / how many found the lock held.
    lock_acquires: int
    lock_contended: int
    #: Total simulated seconds processes spent blocked on locks.
    lock_wait_seconds: float
    #: Wake operations and sleepers woken.
    wakes: int
    woken: int
    #: Copy phases and the peak copy concurrency (bus model).
    copies: int
    peak_copiers: int
    #: Page faults and time lost to them (VM model).
    page_faults: float
    fault_seconds: float
    #: Cache read-miss stalls (block-equivalents) and time lost (cache model).
    cache_stalled_blocks: float
    cache_stall_seconds: float
    #: Event-heap crossings: how many events actually travelled through
    #: the heap (push + pop) versus being retired inline by the
    #: pending-resume slot or the epoch batcher.  ``events / heap_pops``
    #: is the events-retired-per-pop ratio — the jitter-proof evidence
    #: that batching removed scheduler traffic (wall clocks drift with
    #: machine load; these counters are deterministic).
    heap_pushes: int = 0
    heap_pops: int = 0
    #: Epoch batches entered and events retired inside them; their ratio
    #: is the mean quiescent-stretch (batch) size.
    epoch_batches: int = 0
    epoch_events: int = 0

    def as_dict(self) -> dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def collect_report(engine: Engine, timing: BalanceTiming) -> MachineReport:
    """Assemble a :class:`MachineReport` from a finished engine."""
    prof = _REPORT_PROF
    if prof is not None:
        s = engine.stats
        prof["runs"] += 1
        prof["events"] += s.events
        prof["heap_pushes"] += s.heap_pushes
        prof["heap_pops"] += s.heap_pops
        prof["epoch_batches"] += s.epoch_batches
        prof["epoch_events"] += s.epoch_events
    return MachineReport(
        sim_seconds=engine.now,
        events=engine.stats.events,
        charged_seconds=engine.stats.charged_seconds,
        lock_acquires=engine.stats.lock_acquires,
        lock_contended=engine.stats.lock_contended,
        lock_wait_seconds=sum(p.lock_wait_time for p in engine.processes),
        wakes=engine.stats.wakes,
        woken=engine.stats.woken,
        copies=timing.bus.total_copies,
        peak_copiers=timing.bus.peak,
        page_faults=timing.vm.faults,
        fault_seconds=timing.vm.fault_time,
        cache_stalled_blocks=timing.cache.stalled_blocks,
        cache_stall_seconds=timing.cache.stall_time,
        heap_pushes=engine.stats.heap_pushes,
        heap_pops=engine.stats.heap_pops,
        epoch_batches=engine.stats.epoch_batches,
        epoch_events=engine.stats.epoch_events,
    )
