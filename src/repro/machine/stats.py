"""Aggregated machine statistics for a finished simulation.

Benchmarks and tests read one :class:`MachineReport` instead of poking at
engine, bus and VM internals.  Everything here is observational: building
a report does not perturb the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpu import BalanceTiming
from .engine import Engine

__all__ = ["MachineReport", "collect_report"]


@dataclass(frozen=True)
class MachineReport:
    """A snapshot of simulator counters after a run."""

    #: Final simulated time, seconds.
    sim_seconds: float
    #: Events the engine dispatched.
    events: int
    #: Total priced work, seconds (sum of all charges before queuing).
    charged_seconds: float
    #: Lock acquisitions / how many found the lock held.
    lock_acquires: int
    lock_contended: int
    #: Total simulated seconds processes spent blocked on locks.
    lock_wait_seconds: float
    #: Wake operations and sleepers woken.
    wakes: int
    woken: int
    #: Copy phases and the peak copy concurrency (bus model).
    copies: int
    peak_copiers: int
    #: Page faults and time lost to them (VM model).
    page_faults: float
    fault_seconds: float
    #: Cache read-miss stalls (block-equivalents) and time lost (cache model).
    cache_stalled_blocks: float
    cache_stall_seconds: float

    def as_dict(self) -> dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def collect_report(engine: Engine, timing: BalanceTiming) -> MachineReport:
    """Assemble a :class:`MachineReport` from a finished engine."""
    return MachineReport(
        sim_seconds=engine.now,
        events=engine.stats.events,
        charged_seconds=engine.stats.charged_seconds,
        lock_acquires=engine.stats.lock_acquires,
        lock_contended=engine.stats.lock_contended,
        lock_wait_seconds=sum(p.lock_wait_time for p in engine.processes),
        wakes=engine.stats.wakes,
        woken=engine.stats.woken,
        copies=timing.bus.total_copies,
        peak_copiers=timing.bus.peak,
        page_faults=timing.vm.faults,
        fault_seconds=timing.vm.fault_time,
        cache_stalled_blocks=timing.cache.stalled_blocks,
        cache_stall_seconds=timing.cache.stall_time,
    )
