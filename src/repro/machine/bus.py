"""Shared-bus contention model.

Every Balance 21000 processor reaches memory over one shared bus, and the
write-through caches force every copied byte onto it.  At MPF's software
copy rates (~tens of KB/s per process) the bus is never *bandwidth*
saturated — 80 MB/s dwarfs the traffic — but concurrent copiers still
steal each other's bus and memory-controller cycles.  The paper sees this
as the mild sub-linearity of the broadcast curves (Figure 5) and part of
the small-message contention of Figure 4.

The model is intentionally first-order: a copy phase that starts while
``k`` other processes are copying runs ``1 + alpha * k`` times slower.
``alpha`` is a calibrated machine parameter
(:attr:`~repro.machine.balance.MachineConfig.bus_contention_alpha`).
"""

from __future__ import annotations

__all__ = ["BusModel"]


class BusModel:
    """Tracks concurrent shared-memory copy phases."""

    __slots__ = ("alpha", "active", "peak", "total_copies")

    def __init__(self, alpha: float) -> None:
        if alpha < 0:
            raise ValueError("bus contention alpha must be >= 0")
        self.alpha = alpha
        #: Copy phases currently in flight.
        self.active = 0
        #: Maximum concurrency observed (statistics).
        self.peak = 0
        #: Copy phases ever started (statistics).
        self.total_copies = 0

    def started(self) -> None:
        """A process entered a copy phase."""
        self.active += 1
        self.total_copies += 1
        if self.active > self.peak:
            self.peak = self.active

    def finished(self) -> None:
        """A process left a copy phase."""
        if self.active <= 0:
            raise RuntimeError("bus copy finished without matching start")
        self.active -= 1

    def slowdown(self) -> float:
        """Multiplier for a copy phase starting *now*.

        ``self.active`` counts the *other* copiers because the engine
        prices a charge before marking its copy phase started.
        """
        return 1.0 + self.alpha * self.active
