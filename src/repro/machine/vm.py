"""Virtual-memory (paging) overhead model.

Paper §4, on the random benchmark (Figure 6): "When a large number of
processes are transmitting large messages, MPF must allocate a large
amount of memory for message buffers.  The larger the memory requirements
for message transfer, the more susceptible MPF performance is to virtual
memory overheads.  For 1024-byte messages, paging overhead increases
rapidly for more than 10 processes; this is the reason for the decrease in
observed throughput."

The model: the operating system keeps a *resident budget* of MPF message
memory (``resident_bytes``).  The demand signal is the live payload
footprint of the segment (queued message bytes), sampled through a
callback the runtime wires to the segment header — so demand rises and
falls with real queue occupancy, not with a synthetic counter.  When
demand exceeds the budget, a fraction of newly touched pages fault:

    ``fault_fraction = (demand - resident) / demand``  (clamped to [0, 1])

and each fault costs ``page_fault_seconds``.  Faults are charged to the
process touching the pages (the sender allocating blocks), which is where
the Balance's Unix charged them too.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["VmModel"]


class VmModel:
    """Deterministic paging surcharge."""

    __slots__ = (
        "resident_bytes",
        "page_bytes",
        "fault_seconds",
        "enabled",
        "_demand",
        "faults",
        "fault_time",
        "_carry",
    )

    def __init__(
        self,
        resident_bytes: int,
        page_bytes: int,
        fault_seconds: float,
        enabled: bool = True,
    ) -> None:
        if resident_bytes < 0 or page_bytes < 1 or fault_seconds < 0:
            raise ValueError("invalid VM model parameters")
        self.resident_bytes = resident_bytes
        self.page_bytes = page_bytes
        self.fault_seconds = fault_seconds
        self.enabled = enabled
        self._demand: Callable[[], int] = lambda: 0
        #: Page faults charged so far (statistics).
        self.faults = 0.0
        #: Simulated seconds lost to faults (statistics).
        self.fault_time = 0.0
        # Fractional faults accumulate so small touches still pay their
        # share deterministically (no randomness in the simulator).
        self._carry = 0.0

    def set_demand_source(self, fn: Callable[[], int]) -> None:
        """Wire the live-footprint signal (segment ``live_bytes``)."""
        self._demand = fn

    def fault_fraction(self) -> float:
        """Fraction of newly touched pages that fault right now."""
        if not self.enabled:
            return 0.0
        demand = self._demand()
        if demand <= self.resident_bytes or demand <= 0:
            return 0.0
        return (demand - self.resident_bytes) / demand

    def touch(self, nbytes: int) -> float:
        """Charge for touching ``nbytes`` of message memory.

        Returns the fault surcharge in simulated seconds.
        """
        if not self.enabled or nbytes <= 0:
            return 0.0
        frac = self.fault_fraction()
        if frac <= 0.0:
            return 0.0
        pages = (nbytes + self.page_bytes - 1) // self.page_bytes
        expected = pages * frac + self._carry
        whole = int(expected)
        self._carry = expected - whole
        if whole == 0:
            return 0.0
        self.faults += whole
        dt = whole * self.fault_seconds
        self.fault_time += dt
        return dt
