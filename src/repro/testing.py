"""Public testing utilities for MPF-based code.

Downstream users writing unit tests against MPF face the same problem
this repository's own suite does: the primitives are effect generators,
and a test usually wants to execute one logical thread of them without
standing up a runtime.  :class:`DirectRunner` interprets an op generator
single-threadedly, *asserting the locking discipline as it goes* (locks
balance, ops never raise while holding a lock) and turning a would-block
``WaitOn`` into :class:`BlockedError` so blocking behaviour is a testable
outcome rather than a hang.
"""

from __future__ import annotations

from .core.costmodel import DEFAULT_COSTS, Costs
from .core.effects import Acquire, Charge, ChargeMany, Release, WaitOn, Wake
from .core.layout import MPFConfig, SegmentLayout, format_region
from .core.ops import MPFView
from .core.region import SharedRegion
from .core.work import Work

__all__ = ["BlockedError", "DisciplineError", "DirectRunner", "make_view"]


class BlockedError(Exception):
    """Raised by :class:`DirectRunner` when an op would block."""


class DisciplineError(AssertionError):
    """An op violated the locking discipline (runner-detected)."""


class DirectRunner:
    """Single-threaded interpreter for MPF op generators.

    Interprets lock effects as bookkeeping (asserting they balance),
    accumulates charged :class:`~repro.core.work.Work`, records wakes,
    and raises :class:`BlockedError` on ``WaitOn``.
    """

    def __init__(self, view: MPFView) -> None:
        self.view = view
        #: Locks currently held (must be empty when an op finishes).
        self.held: list[int] = []
        #: Every Work charged, in order.
        self.charged: list[Work] = []
        #: Channels woken, in order.
        self.wakes: list[int] = []

    def run(self, gen):
        """Drive ``gen`` to completion; returns its value.

        Raises :class:`BlockedError` if the op waits on a channel, and
        ``AssertionError`` if the op violates the locking discipline.
        """
        try:
            value = None
            while True:
                effect = gen.send(value)
                value = None
                if isinstance(effect, Acquire):
                    if effect.lock_id in self.held:
                        raise DisciplineError(
                            f"self-deadlock on lock {effect.lock_id}"
                        )
                    self.held.append(effect.lock_id)
                elif isinstance(effect, Release):
                    if effect.lock_id not in self.held:
                        raise DisciplineError(
                            f"released un-held lock {effect.lock_id}"
                        )
                    self.held.remove(effect.lock_id)
                elif isinstance(effect, Charge):
                    self.charged.append(effect.work)
                elif isinstance(effect, ChargeMany):
                    self.charged.extend(effect.works)
                elif isinstance(effect, WaitOn):
                    # WaitOn releases its lock before sleeping; mirror
                    # that so the runner can keep executing other ops
                    # after reporting the block.
                    if effect.lock_id not in self.held:
                        raise DisciplineError(
                            f"WaitOn without holding lock {effect.lock_id}"
                        )
                    self.held.remove(effect.lock_id)
                    raise BlockedError(f"blocked on channel {effect.chan}")
                elif isinstance(effect, Wake):
                    self.wakes.append(effect.chan)
                else:
                    raise DisciplineError(f"unknown effect {effect!r}")
        except StopIteration as stop:
            if self.held:
                raise DisciplineError(
                    f"op finished holding locks {self.held}"
                ) from None
            return stop.value
        except (BlockedError, DisciplineError):
            raise
        except BaseException:
            # Ops must release their locks before raising; verify.
            if self.held:
                raise DisciplineError(
                    f"op raised while holding locks {self.held}"
                ) from None
            raise

    def total_instrs(self) -> int:
        """Sum of instruction budgets charged so far."""
        return sum(w.instrs for w in self.charged)

    def total_copy_bytes(self) -> int:
        """Sum of payload bytes charged as copies so far."""
        return sum(w.copy_bytes for w in self.charged)


def make_view(costs: Costs = DEFAULT_COSTS, **overrides) -> MPFView:
    """A freshly formatted small in-memory segment.

    Keyword arguments override :class:`~repro.core.layout.MPFConfig`
    fields; defaults are sized for unit tests (8 circuits, 8 processes,
    64 messages, 64 KiB of blocks).
    """
    defaults = dict(max_lnvcs=8, max_processes=8, max_messages=64,
                    message_pool_bytes=1 << 16)
    defaults.update(overrides)
    cfg = MPFConfig(**defaults)
    region = SharedRegion(bytearray(SegmentLayout(cfg).total_size))
    layout = format_region(region, cfg)
    return MPFView(region, layout, costs)
