"""Client-side send batching: K logical requests per MPF message.

The cost model (:mod:`repro.core.costmodel`) charges several thousand
instructions of fixed overhead per ``message_send``/``message_receive``
— the 1987 library call, descriptor search and queue bookkeeping.  A
serving client that packs K requests into one MPF message pays that
overhead once per batch instead of once per request, and makes K times
fewer trips through the shared block allocator.  Goodput and latency
are always accounted in *logical requests*, never MPF messages, so
batched and unbatched runs are directly comparable.

Wire format (little-endian)::

    header:  kind:u8  count:u16          (3 bytes)
    slot:    client:u16  seq:u32  t_admit:f64  [padding to slot_bytes]

``t_admit`` is the client clock at admission, carried end to end so the
aggregator can compute exact per-request latency without any shared
state; padding models the real request/response payload.
"""

from __future__ import annotations

import struct

__all__ = [
    "KIND_DATA",
    "KIND_DONE",
    "REQUEST_RECORD",
    "BATCH_HEADER",
    "encode_batch",
    "decode_batch",
    "encode_done",
    "batch_bytes",
]

#: First payload byte: a batch of request records.
KIND_DATA = 0x01
#: First payload byte: end-of-stream marker (no records).
KIND_DONE = 0x02

#: One logical request: ``(client, seq, t_admit)``.
REQUEST_RECORD = struct.Struct("<HId")
BATCH_HEADER = struct.Struct("<BH")


def batch_bytes(count: int, slot_bytes: int) -> int:
    """Payload length of a ``count``-record batch with ``slot_bytes`` slots."""
    return BATCH_HEADER.size + count * slot_bytes


def encode_batch(records: list[tuple[int, int, float]],
                 slot_bytes: int) -> bytes:
    """Pack ``(client, seq, t_admit)`` records into one message payload."""
    if slot_bytes < REQUEST_RECORD.size:
        raise ValueError(
            f"slot_bytes must be >= {REQUEST_RECORD.size} "
            f"(the request record), got {slot_bytes}")
    out = bytearray(batch_bytes(len(records), slot_bytes))
    BATCH_HEADER.pack_into(out, 0, KIND_DATA, len(records))
    off = BATCH_HEADER.size
    for rec in records:
        REQUEST_RECORD.pack_into(out, off, *rec)
        off += slot_bytes
    return bytes(out)


def decode_batch(payload: bytes,
                 slot_bytes: int) -> list[tuple[int, int, float]] | None:
    """Unpack a payload; ``None`` for a DONE marker."""
    kind, count = BATCH_HEADER.unpack_from(payload, 0)
    if kind == KIND_DONE:
        return None
    if kind != KIND_DATA:
        raise ValueError(f"unknown serve message kind {kind:#x}")
    expect = batch_bytes(count, slot_bytes)
    if len(payload) != expect:
        raise ValueError(
            f"batch length mismatch: {len(payload)} bytes for "
            f"{count} records of {slot_bytes} (expected {expect})")
    out = []
    off = BATCH_HEADER.size
    for _ in range(count):
        out.append(REQUEST_RECORD.unpack_from(payload, off))
        off += slot_bytes
    return out


def encode_done() -> bytes:
    """The end-of-stream marker payload."""
    return BATCH_HEADER.pack(KIND_DONE, 0)
