"""Service-tier topology builder: MPF as a production-serving fabric.

A :class:`ServeShape` declares a three-tier service in the style the
paper's §6 sketches for LNVC-structured applications — open-loop
**clients** feeding a row of **frontends**, which fan requests out over
a pool of **workers**, whose results fan back into one **aggregator**::

    clients ──▶ serve.front.{f} ──▶ frontends ──▶ serve.work.{w}
                                                      │
              aggregator ◀── serve.agg ◀── workers ◀──┘

:func:`build_workers` compiles the shape plus per-client arrival
schedules into ordinary MPF worker generators, so the same service runs
unchanged on the simulator, real threads, or forked processes.  Every
tier is an LNVC consumer/producer and nothing more: the builder adds no
new primitives, just an opinionated wiring of the paper's eight.

Capacity anatomy (defaults, simulated Balance):  request batches cost
the client ``send_fixed + nblk·(blk_fill + copy)`` instructions, each
frontend pays a receive and a forward, workers add ``service_instrs``
per request, and every hop round-trips the shared block pool.  With
batching amortising the fixed costs, the binding constraint at the
knee becomes the **allocator lock** — which is exactly the regime the
sharded free list (``freelist_shards``) exists to relieve.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..core.errors import OutOfMessageMemoryError
from ..core.layout import MPFConfig
from ..core.protocol import Protocol
from ..machine.balance import BALANCE_21000, MachineConfig
from ..patterns import tag
from ..runtime.base import Env
from .batching import (
    KIND_DONE,
    batch_bytes,
    decode_batch,
    encode_batch,
    encode_done,
)
from .overload import POLICIES, AdmissionQueue, OverloadStats

__all__ = ["ServeShape", "serve_config", "serve_machine", "build_workers"]


@dataclass(frozen=True)
class ServeShape:
    """Declarative description of one service deployment."""

    #: Open-loop request generators (tier 0).
    clients: int = 4
    #: Request routers (tier 1); clients spread batches round-robin.
    frontends: int = 8
    #: Request processors (tier 2); frontends spread batches round-robin.
    workers: int = 8
    #: Logical request size carried through the request tiers, bytes.
    request_bytes: int = 256
    #: Result record size on the fan-in leg, bytes (small acks).
    reply_bytes: int = 16
    #: Application compute per request at a worker, instructions.
    service_instrs: int = 2000
    #: Logical requests per MPF message (1 = unbatched).
    batch: int = 1
    #: Backpressure policy: ``"shed"`` or ``"stall"``.
    policy: str = "shed"
    #: Admission queue bound, in batches, per client.
    queue_cap: int = 32
    #: Free-list shards for the run's :class:`MPFConfig` (1 = classic).
    freelist_shards: int = 1
    #: Backoff before retrying a refused send, seconds.
    backoff_seconds: float = 0.002
    #: Shared block pool budget, in request batches (sizes the config).
    pool_batches: int = 64

    def __post_init__(self) -> None:
        if min(self.clients, self.frontends, self.workers) < 1:
            raise ValueError("every tier needs at least one process")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}")
        record = 14  # REQUEST_RECORD.size; slots carry one record each
        if self.request_bytes < record or self.reply_bytes < record:
            raise ValueError("request/reply slot bytes must fit the "
                             f"{record}-byte request record")

    @property
    def nprocs(self) -> int:
        return self.clients + self.frontends + self.workers + 1

    @property
    def circuits(self) -> int:
        """Data circuits the topology opens (excluding barrier gates)."""
        return self.frontends + self.workers + 1

    def with_load_features(self, *, batch: int | None = None,
                           shards: int | None = None) -> "ServeShape":
        """Clone with batching/sharding toggled (A/B sweeps)."""
        out = self
        if batch is not None:
            out = replace(out, batch=batch)
        if shards is not None:
            out = replace(out, freelist_shards=shards)
        return out


def serve_config(shape: ServeShape) -> MPFConfig:
    """Size an :class:`MPFConfig` for ``shape``.

    The block pool is the deliberately bounded resource: it holds
    ``pool_batches`` request batches, enough for smooth flow below the
    knee, small enough that overload surfaces as
    :class:`OutOfMessageMemoryError` backpressure instead of unbounded
    queueing.  Everything else gets headroom.
    """
    req_batch = batch_bytes(shape.batch, shape.request_bytes)
    rep_batch = batch_bytes(shape.batch, shape.reply_bytes)
    # Gate circuits (two barriers can coexist) plus slack.
    max_lnvcs = shape.circuits + 8
    if max_lnvcs > 1024:
        raise ValueError(
            f"shape needs {max_lnvcs} circuits; the segment caps LNVC "
            "slots at 1024 (SLOT_BITS) — shrink the tiers")
    # Request budget plus fan-in headroom: a few replies per worker
    # must always fit even when requests saturate their budget.
    pool_bytes = (shape.pool_batches * (req_batch + 64)
                  + 4 * shape.workers * (rep_batch + 64))
    return MPFConfig(
        max_lnvcs=max_lnvcs,
        max_processes=shape.nprocs,
        # Headers must outnumber the worst case of all-minimal messages,
        # so the *block pool* is always the resource that binds — tiny
        # fan-in replies must hit the same backpressure as requests.
        max_messages=pool_bytes // 10 + 128,
        message_pool_bytes=pool_bytes,
        freelist_shards=shape.freelist_shards,
    )


def serve_machine(shape: ServeShape,
                  base: MachineConfig = BALANCE_21000) -> MachineConfig:
    """Machine preset for serving runs: a scaled-out Balance.

    Serving shapes legitimately exceed the 1987 testbed's 20 CPUs, and
    the paper's paging model (30 ms faults against a 24 KB resident
    budget) would drown the synchronization effects this subsystem
    studies — a production box is not thrashing its message pool.  CPUs
    scale to the process count; per-instruction pricing stays the
    Balance's.
    """
    return replace(base, n_cpus=max(base.n_cpus, shape.nprocs),
                   paging_enabled=False, cache_enabled=False)


def _sim_pacer(machine: MachineConfig):
    instr = machine.instr_seconds

    def pace(env: Env, until: float):
        dt = until - env.now()
        if dt > 0:
            yield from env.compute(instrs=max(1, round(dt / instr)))

    return pace


def _wall_pacer():
    import time

    def pace(env: Env, until: float):
        dt = until - env.now()
        if dt > 0:
            time.sleep(dt)
        return
        yield  # pragma: no cover - marks this as a generator

    return pace


def _send_done(env: Env, out: int, pace) -> "object":
    """Send a DONE marker, retrying through backpressure (never shed)."""
    while True:
        try:
            yield from env.message_send(out, encode_done())
            return
        except OutOfMessageMemoryError:
            yield from pace(env, env.now() + 0.002)


def _gate(env: Env, name: str, n: int, pace):
    """:func:`repro.patterns.barrier` with backpressure-tolerant sends.

    Serving runs cross their gates while the block pool may still be
    saturated with queued batches, so the control messages retry through
    :class:`OutOfMessageMemoryError` instead of propagating it.  The
    protocol is otherwise the library barrier's, lost-message rules and
    all.
    """
    out_id = yield from env.open_receive(f"{name}.out", Protocol.BROADCAST)
    in_id = yield from env.open_send(f"{name}.in")
    while True:
        try:
            yield from env.message_send(in_id, tag(env.rank, b""))
            break
        except OutOfMessageMemoryError:
            yield from pace(env, env.now() + 0.002)
    if env.rank == 0:
        arrivals = yield from env.open_receive(f"{name}.in", Protocol.FCFS)
        for _ in range(n):
            yield from env.message_receive(arrivals)
        yield from env.close_receive(arrivals)
        release = yield from env.open_send(f"{name}.out")
        while True:
            try:
                yield from env.message_send(release, b"go")
                break
            except OutOfMessageMemoryError:
                yield from pace(env, env.now() + 0.002)
        yield from env.close_send(release)
    yield from env.message_receive(out_id)
    yield from env.close_send(in_id)
    yield from env.close_receive(out_id)


def build_workers(
    shape: ServeShape,
    schedules: Sequence[Sequence[float]],
    runtime: str = "sim",
    machine: MachineConfig | None = None,
) -> list[Callable]:
    """Compile ``shape`` + per-client ``schedules`` into MPF workers.

    Returns ``shape.nprocs`` generator functions: clients first, then
    frontends, workers, and the aggregator last.  Client ``i`` replays
    ``schedules[i]`` (absolute seconds from the start barrier).  The
    aggregator returns the measurement::

        {"t0", "t_last", "completed", "e2e"}

    and each client returns its :class:`OverloadStats` as a dict.
    """
    if len(schedules) != shape.clients:
        raise ValueError(
            f"need one schedule per client ({shape.clients}), "
            f"got {len(schedules)}")
    if machine is None:
        machine = serve_machine(shape)
    pace = _sim_pacer(machine) if runtime == "sim" else _wall_pacer()

    C, F, W = shape.clients, shape.frontends, shape.workers
    nprocs = shape.nprocs
    stall = shape.policy == "stall"

    def make_client(idx: int, times: Sequence[float]):
        def client(env: Env):
            outs = []
            for f in range(F):
                outs.append((yield from env.open_send(f"serve.front.{f}")))
            yield from _gate(env, "serve.up", nprocs, pace)
            t0 = env.now()
            stats = OverloadStats()
            q = AdmissionQueue(shape.queue_cap, stats)
            pending: list[tuple[int, int, float]] = []
            seq = 0
            rr = idx  # stagger round-robin starts across clients

            def drain():
                nonlocal rr
                retries = 8
                while len(q):
                    payload, n = q.head()  # type: ignore[misc]
                    try:
                        yield from env.message_send(outs[rr % F], payload)
                    except OutOfMessageMemoryError:
                        stats.backpressure_events += 1
                        if not stall:
                            stats.shed_backpressure += n
                            q.pop()
                            continue
                        stats.stalls += 1
                        t_b = env.now()
                        yield from pace(env, t_b + shape.backoff_seconds)
                        stats.stall_seconds += env.now() - t_b
                        retries -= 1
                        if retries <= 0:
                            return  # keep queued; retry at next arrival
                        continue
                    rr += 1
                    q.pop()

            for t in times:
                yield from pace(env, t0 + t)
                pending.append((idx, seq, env.now()))
                seq += 1
                if len(pending) >= shape.batch:
                    q.push(encode_batch(pending, shape.request_bytes),
                           len(pending))
                    pending = []
                    yield from drain()
            if pending:
                q.push(encode_batch(pending, shape.request_bytes),
                       len(pending))
            while len(q):  # final drain (stall keeps every admitted batch)
                before = len(q)
                yield from drain()
                if len(q) == before and not stall:
                    break
            for out in outs:
                yield from _send_done(env, out, pace)
            yield from _gate(env, "serve.down", nprocs, pace)
            for out in outs:
                yield from env.close_send(out)
            return stats.to_dict()

        return client

    def make_frontend(f: int):
        def frontend(env: Env):
            rid = yield from env.open_receive(f"serve.front.{f}",
                                              Protocol.FCFS)
            outs = []
            for w in range(W):
                outs.append((yield from env.open_send(f"serve.work.{w}")))
            yield from _gate(env, "serve.up", nprocs, pace)
            dones = 0
            rr = f
            forwarded = 0
            # A tier that stops receiving while messages queue on its
            # own circuit deadlocks the pool: queued messages hold
            # blocks that only *receiving* returns.  So the frontend
            # always drains its circuit and parks unforwardable batches
            # in a local backlog (bounded by pool capacity), flushing
            # opportunistically — backpressure lands on the clients,
            # the one tier with a shed/stall policy.
            backlog: deque = deque()
            while dones < C:
                payload = yield from env.message_receive(rid)
                if payload[0] == KIND_DONE:
                    dones += 1
                else:
                    backlog.append(payload)
                while backlog:  # one attempt each; never block here
                    try:
                        yield from env.message_send(outs[rr % W],
                                                    backlog[0])
                    except OutOfMessageMemoryError:
                        break
                    backlog.popleft()
                    rr += 1
                    forwarded += 1
                env.gauge("tier:frontends|backlog", len(backlog))
            while backlog:  # input drained: flush with backoff
                try:
                    yield from env.message_send(outs[rr % W], backlog[0])
                except OutOfMessageMemoryError:
                    yield from pace(env, env.now()
                                    + shape.backoff_seconds / 2)
                    yield from env.check_receive(rid)
                    continue
                backlog.popleft()
                rr += 1
                forwarded += 1
            for out in outs:
                yield from _send_done(env, out, pace)
            yield from _gate(env, "serve.down", nprocs, pace)
            for out in outs:
                yield from env.close_send(out)
            yield from env.close_receive(rid)
            return {"forwarded": forwarded}

        return frontend

    def make_worker(w: int):
        def worker(env: Env):
            rid = yield from env.open_receive(f"serve.work.{w}",
                                              Protocol.FCFS)
            out = yield from env.open_send("serve.agg")
            yield from _gate(env, "serve.up", nprocs, pace)
            dones = 0
            served = 0
            # Workers must never block on the fan-in leg while requests
            # queue behind them: at overload the pool is entirely tied
            # up in queued request batches, and those blocks only come
            # back when workers keep *receiving*.  So replies that hit
            # backpressure park in a local backlog (bounded by the
            # offered schedule) and flush opportunistically — the
            # deadlock-free shape of a fan-in under a shared pool.
            backlog: deque = deque()
            while dones < F:
                payload = yield from env.message_receive(rid)
                records = decode_batch(payload, shape.request_bytes)
                if records is None:
                    dones += 1
                else:
                    yield from env.compute(
                        instrs=shape.service_instrs * len(records))
                    backlog.append(encode_batch(records, shape.reply_bytes))
                    served += len(records)
                while backlog:  # one attempt each; never block here
                    try:
                        yield from env.message_send(out, backlog[0])
                        backlog.popleft()
                    except OutOfMessageMemoryError:
                        break
                env.gauge("tier:workers|backlog", len(backlog))
            while backlog:  # drained input: flush with backoff
                try:
                    yield from env.message_send(out, backlog[0])
                    backlog.popleft()
                except OutOfMessageMemoryError:
                    yield from pace(env, env.now()
                                    + shape.backoff_seconds / 2)
                    yield from env.check_receive(rid)
            yield from _send_done(env, out, pace)
            yield from _gate(env, "serve.down", nprocs, pace)
            yield from env.close_send(out)
            yield from env.close_receive(rid)
            return {"served": served}

        return worker

    def aggregator(env: Env):
        rid = yield from env.open_receive("serve.agg", Protocol.FCFS)
        yield from _gate(env, "serve.up", nprocs, pace)
        t0 = env.now()
        t_last = t0
        completed = 0
        e2e: list[float] = []
        dones = 0
        while dones < W:
            payload = yield from env.message_receive(rid)
            records = decode_batch(payload, shape.reply_bytes)
            if records is None:
                dones += 1
                continue
            now = env.now()
            for _, _, t_admit in records:
                e2e.append(now - t_admit if now > t_admit else 0.0)
            completed += len(records)
            t_last = now
        yield from _gate(env, "serve.down", nprocs, pace)
        yield from env.close_receive(rid)
        return {"t0": t0, "t_last": t_last, "completed": completed,
                "e2e": e2e}

    procs: list[Callable] = []
    for i in range(C):
        procs.append(make_client(i, schedules[i]))
    for f in range(F):
        procs.append(make_frontend(f))
    for w in range(W):
        procs.append(make_worker(w))
    procs.append(aggregator)
    return procs
