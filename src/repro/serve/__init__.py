"""Open-loop production-serving experiments on top of MPF.

The paper evaluates MPF with *closed-loop* benchmarks: every process
alternates between issuing work and waiting for its own completions, so
offered load adapts itself to whatever the facility can absorb.  A 1987
service built on MPF — or any modern message-passing server — faces the
opposite regime: requests arrive on their own schedule, indifferent to
how far behind the service has fallen.  This package is that missing
regime, built entirely out of the reproduction's public pieces:

* :mod:`repro.serve.topology` — a declarative service-tier builder
  (clients → frontends → fan-out workers → fan-in aggregator) compiled
  to ordinary MPF worker generators, runnable on any runtime;
* :mod:`repro.serve.arrivals` — seeded Poisson and trace-driven
  arrival schedules, generated independently of any runtime so the same
  schedule replays bit-identically on the simulator and real threads;
* :mod:`repro.serve.batching` — client-side send batching: K logical
  requests per MPF message, amortising the fixed per-primitive costs;
* :mod:`repro.serve.overload` — bounded admission queues and the
  shed-vs-stall backpressure policies driven by
  :class:`~repro.core.errors.OutOfMessageMemoryError`;
* :mod:`repro.serve.sweep` — offered-load sweeps producing goodput
  curves, knee detection, and SLO latency quantiles (p50/p99/p999);
* :mod:`repro.serve.slo` — the SLO report: JSON schema, validation,
  and text formatting.

Run it with ``python -m repro.bench serve``; see docs/serving.md.
"""

from .arrivals import (
    PoissonArrivals,
    TraceArrivals,
    schedule_digest,
)
from .batching import (
    REQUEST_RECORD,
    decode_batch,
    encode_batch,
)
from .overload import OverloadStats, POLICIES
from .slo import SLOReport, detect_knee, validate_slo
from .sweep import run_point, run_sweep
from .topology import ServeShape, build_workers, serve_config

__all__ = [
    "PoissonArrivals",
    "TraceArrivals",
    "schedule_digest",
    "REQUEST_RECORD",
    "encode_batch",
    "decode_batch",
    "OverloadStats",
    "POLICIES",
    "SLOReport",
    "detect_knee",
    "validate_slo",
    "run_point",
    "run_sweep",
    "ServeShape",
    "build_workers",
    "serve_config",
]
