"""``python -m repro.bench serve`` — the open-loop serving benchmark.

Sweeps offered load over three configurations of the same service shape
(unbatched baseline, send batching, batching + sharded free list),
prints the SLO table with detected saturation knees, and optionally
archives the SLO JSON document, Prometheus metrics, and the message
flow graph of a causally-traced knee point::

    python -m repro.bench serve                     # full sweep (sim)
    python -m repro.bench serve --quick             # CI-sized sweep
    python -m repro.bench serve --runtime threads --quick
    python -m repro.bench serve --jobs 4 --json slo.json
    python -m repro.bench serve --prom serve.prom --flow serve.dot

The full sweep pushes over a million MPF messages through the
simulator; ``--jobs N`` spreads the load points over N worker
processes (each point is an independent deterministic simulation, so
output is identical to a serial run).
"""

from __future__ import annotations

import argparse
import json
import time

from .slo import validate_slo
from .sweep import run_point, run_sweep
from .topology import ServeShape

__all__ = ["serve_main"]

#: Sweep presets: (loads in aggregate requests/s, schedule seconds).
#: Sized so the three-config sweep pushes >1M MPF messages through the
#: simulator (the unbatched baseline dominates the message count).
FULL_LOADS = (100.0, 200.0, 300.0, 400.0, 500.0, 700.0, 900.0, 1100.0,
              1300.0)
FULL_DURATION = 120.0
QUICK_LOADS = (60.0, 200.0, 400.0)
QUICK_DURATION = 2.0

#: The three A/B configurations every sweep reports.
CONFIG_BUILDERS = {
    "baseline": lambda s: s,
    "batched": lambda s: s.with_load_features(batch=8),
    "batched+sharded": lambda s: s.with_load_features(batch=8, shards=8),
}


def _parse_loads(text: str) -> tuple[float, ...]:
    try:
        loads = tuple(float(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad load list {text!r}")
    if not loads or any(x <= 0 for x in loads):
        raise argparse.ArgumentTypeError("loads must be positive numbers")
    return loads


def _sends_per_window(timeline) -> list[tuple[float, float]]:
    """(seconds-from-first-window, total sends) per non-empty window."""
    per: dict[int, float] = {}
    for idx, win in timeline.windows.items():
        n = sum(v for k, v in win["counters"].items()
                if k.endswith("|sent"))
        if n:
            per[idx] = per.get(idx, 0) + n
    if not per:
        return []
    base = min(per)
    return [((idx - base) * timeline.width, per[idx])
            for idx in sorted(per)]


def _closed_loop_comparison(open_tl, runtime: str, width: float) -> dict:
    """Open-loop probe vs closed-loop figure workload, per window.

    Runs Figure 4's closed-loop ``fcfs`` program under the same timeline
    width and charts both send-rate curves on a shared relative time
    axis: the closed-loop curve is flat (each message is paced by the
    previous one completing), while the open-loop probe's curve follows
    the arrival schedule and dips where the health findings localize
    saturation — the serving subsystem's tie back to Figures 3–6.
    """
    from ..bench.harness import SweepResult
    from ..bench.plot import ascii_plot
    from ..bench.workloads import fcfs_throughput
    from ..obs import Recorder

    closed_rec = Recorder(timeline=True, timeline_width=width)
    fcfs_throughput(4, 64, messages=256, runtime=runtime,
                    recorder=closed_rec)

    fig = SweepResult(
        figure="serve-timeline",
        title="sends per window: open-loop probe vs closed-loop fcfs",
        x_label="seconds since first window",
        y_label="messages sent per window",
    )
    out: dict = {}
    for key, label, tl in (
        ("open_loop", "open-loop probe", open_tl),
        ("closed_loop", "closed-loop fcfs", closed_rec.timeline),
    ):
        series = fig.new_series(label)
        rows = _sends_per_window(tl)
        for x, y in rows:
            series.add(x, y)
        out[key] = {"label": label, "width": tl.width,
                    "sends_per_window": [y for _, y in rows]}
    out["figure"] = ascii_plot(fig)
    return out


def serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench serve",
        description="Open-loop serving sweep: goodput and SLO latency vs "
        "offered load, baseline vs batched vs batched+sharded.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep (for CI): fewer loads, short schedules",
    )
    parser.add_argument(
        "--runtime", default="sim", choices=("sim", "threads", "procs"),
        help="runtime to serve on (default sim; threads/procs pace "
        "arrivals on the wall clock)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="measure load points on N worker processes (default 1: "
        "serial; output is identical either way)",
    )
    parser.add_argument(
        "--loads", type=_parse_loads, metavar="R1,R2,...",
        help="offered loads to sweep, aggregate requests/s "
        "(default: the full or --quick preset)",
    )
    parser.add_argument(
        "--duration", type=float, metavar="S",
        help="nominal schedule length per point, seconds (a point at "
        "rate R offers R*S requests)",
    )
    parser.add_argument(
        "--policy", default="shed", choices=("shed", "stall"),
        help="client backpressure policy when the pool refuses a send "
        "(default shed)",
    )
    parser.add_argument(
        "--seed", type=int, default=1987,
        help="arrival-schedule seed (default 1987)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the SLO report as JSON (schema mpf-serve-slo/1)",
    )
    parser.add_argument(
        "--prom", metavar="PATH",
        help="rerun the knee point under the bounded causal tracer and "
        "write its metrics in Prometheus text exposition format",
    )
    parser.add_argument(
        "--timeline", nargs="?", const=True, default=None, metavar="PATH",
        help="window the traced probe into a timeline and write the "
        "mpf-serve-timeline/1 JSON document with online health findings "
        "(default path: next to --json, else serve-timeline.json)",
    )
    parser.add_argument(
        "--timeline-width", type=float, default=0.05, metavar="S",
        help="timeline window width in run-timebase seconds "
        "(default 0.05)",
    )
    parser.add_argument(
        "--live", nargs="?", const=0, default=None, type=int, metavar="PORT",
        help="serve live telemetry on 127.0.0.1:PORT while the traced "
        "probe runs — GET /metrics (Prometheus), /findings, /timeline "
        "(0 or no value = ephemeral port)",
    )
    parser.add_argument(
        "--flow", metavar="PATH",
        help="with the same traced knee point, write the message flow "
        "graph as Graphviz DOT",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    loads = args.loads or (QUICK_LOADS if args.quick else FULL_LOADS)
    duration = args.duration if args.duration is not None else \
        (QUICK_DURATION if args.quick else FULL_DURATION)
    base = ServeShape(policy=args.policy)
    configs = {name: build(base) for name, build in CONFIG_BUILDERS.items()}

    t0 = time.perf_counter()
    report, sweep = run_sweep(configs, list(loads), duration=duration,
                              seed=args.seed, runtime=args.runtime,
                              jobs=args.jobs)

    # One extra causally-traced point at the most interesting load — the
    # first detected knee, else the largest swept load — for the stall
    # findings and the observability exports.
    knees = [c["knee_rps"] for c in report.configs.values()
             if c["knee_rps"] is not None]
    probe_rate = min(knees) if knees else loads[-1]
    probe_n = max(1, round(probe_rate * min(duration, 5.0)))
    want_timeline = args.timeline is not None or args.live is not None
    health = server = None
    if want_timeline:
        from ..obs import HealthEngine, LiveTelemetryServer, Recorder, \
            serve_tier_of

        probe_rec = Recorder(causal=True, causal_max_events=65536,
                             timeline=True,
                             timeline_width=args.timeline_width)
        health = HealthEngine(probe_rec.timeline, tier_of=serve_tier_of)
        if args.live is not None:
            server = LiveTelemetryServer(probe_rec, port=args.live,
                                         health=health)
            print(f"live telemetry at {server.start()} "
                  "(/metrics /findings /timeline; up during the probe)")
    else:
        probe_rec = None
    try:
        point, rec = run_point(
            configs["batched+sharded"], probe_rate, probe_n, seed=args.seed,
            runtime=args.runtime, causal=True, recorder=probe_rec)
    finally:
        if server is not None:
            server.stop()
    tracer = rec.causal
    report.findings.append(
        f"traced probe at {probe_rate:g} rps ({args.runtime}): "
        f"goodput {point['goodput_rps']:.1f} rps, p999 "
        f"{point['p999_ms']:.2f} ms, causal stride 1/{tracer.stride}")
    from ..obs import detect_stalls

    report.findings.extend(detect_stalls(tracer))
    if health is not None:
        # Online health attribution over the probe's timeline; the
        # structured findings cross-link into the SLO report so the SLO
        # document alone already names the first saturating tier.
        health.poll()
        report.findings.extend(f"telemetry: {f.detail}"
                               for f in health.findings)
    wall = time.perf_counter() - t0

    print(report.format_table())
    print()
    doc = report.to_dict()
    validate_slo(doc)
    print(f"  total MPF messages: {doc['total_mpf_messages']:,}")
    for note in sweep.notes:
        print(f"  {note}")
    print(f"  [{wall:.1f}s wall]")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(rec.prometheus())
        print(f"wrote {args.prom}")
    if args.timeline is not None:
        from .slo import build_timeline_doc, validate_timeline

        comparison = _closed_loop_comparison(
            rec.timeline, args.runtime, args.timeline_width)
        tdoc = build_timeline_doc(args.runtime, args.seed, probe_rate,
                                  rec.timeline, health.findings,
                                  comparison)
        validate_timeline(tdoc)
        if isinstance(args.timeline, str):
            tpath = args.timeline
        elif args.json:
            tpath = (args.json[:-5] if args.json.endswith(".json")
                     else args.json) + "-timeline.json"
        else:
            tpath = "serve-timeline.json"
        with open(tpath, "w") as fh:
            json.dump(tdoc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {tpath} "
              f"({len(tdoc['timeline']['windows'])} windows, "
              f"{len(tdoc['findings'])} finding(s))")
        print(comparison["figure"])
    if args.flow:
        from ..obs import flow_dot, flow_from_causal

        with open(args.flow, "w") as fh:
            fh.write(flow_dot(flow_from_causal(tracer)))
        print(f"wrote {args.flow}")
    return 0
