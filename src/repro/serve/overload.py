"""Overload handling: bounded admission, backpressure, shed vs stall.

An open-loop client cannot slow its arrival process down, so overload
must go *somewhere*.  This module gives it exactly two places to go,
both bounded and both reported:

* a **bounded admission queue** in front of the send path — arrivals
  that find it full are shed immediately (``shed_overflow``);
* a **backpressure policy** for sends the facility refuses
  (:class:`~repro.core.errors.OutOfMessageMemoryError` — the block pool
  is the service's shared buffer, and exhausting it is MPF's native
  backpressure signal):

  - ``"shed"`` drops the batch and keeps pace with the schedule
    (graceful degradation: goodput flattens, latency stays bounded);
  - ``"stall"`` retries after a backoff, preserving every request at
    the price of falling behind the schedule (latency grows without
    bound past saturation — the classic bufferbloat trade).

:class:`OverloadStats` is one client's account of all of it; the sweep
aggregates them into the SLO report's degradation columns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["POLICIES", "OverloadStats", "AdmissionQueue"]

#: Recognised backpressure policies.
POLICIES = ("shed", "stall")


@dataclass
class OverloadStats:
    """One client's overload ledger for a run."""

    #: Logical requests admitted to the queue.
    admitted: int = 0
    #: Requests dropped because the admission queue was full.
    shed_overflow: int = 0
    #: Requests dropped by the ``shed`` policy on pool exhaustion.
    shed_backpressure: int = 0
    #: Individual send attempts refused by the facility.
    backpressure_events: int = 0
    #: Backoff sleeps taken by the ``stall`` policy.
    stalls: int = 0
    #: Total seconds spent in ``stall`` backoff.
    stall_seconds: float = 0.0

    @property
    def shed(self) -> int:
        """All requests dropped, for any reason."""
        return self.shed_overflow + self.shed_backpressure

    def merge(self, other: "OverloadStats") -> None:
        self.admitted += other.admitted
        self.shed_overflow += other.shed_overflow
        self.shed_backpressure += other.shed_backpressure
        self.backpressure_events += other.backpressure_events
        self.stalls += other.stalls
        self.stall_seconds += other.stall_seconds

    def to_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "shed_overflow": self.shed_overflow,
            "shed_backpressure": self.shed_backpressure,
            "backpressure_events": self.backpressure_events,
            "stalls": self.stalls,
            "stall_seconds": self.stall_seconds,
        }


@dataclass
class AdmissionQueue:
    """Bounded FIFO of encoded batches awaiting a successful send.

    ``push`` returns ``False`` (and counts the whole batch as shed) when
    the queue is full — admission control happens *before* the facility
    is touched, so a melting-down pool never grows unbounded client
    state behind it.
    """

    cap: int
    stats: OverloadStats
    _q: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.cap < 1:
            raise ValueError("admission queue cap must be >= 1")

    def push(self, payload: bytes, requests: int) -> bool:
        if len(self._q) >= self.cap:
            self.stats.shed_overflow += requests
            return False
        self._q.append((payload, requests))
        self.stats.admitted += requests
        return True

    def head(self) -> tuple[bytes, int] | None:
        return self._q[0] if self._q else None

    def pop(self) -> None:
        self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)
