"""SLO reporting: latency quantiles, goodput curves, knee detection.

The serving subsystem's deliverable is one JSON document per sweep —
the :class:`SLOReport` — with a row per offered-load point and a
detected saturation knee per configuration.  :func:`validate_slo` is a
strict structural checker (no third-party schema library) used by the
``serve-smoke`` CI gate, so the document format is a contract, not an
accident.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["SLOReport", "detect_knee", "validate_slo", "POINT_FIELDS",
           "build_timeline_doc", "validate_timeline"]

#: Required numeric fields of every sweep point.
POINT_FIELDS = (
    "offered_rps",
    "goodput_rps",
    "completed",
    "offered",
    "shed",
    "stalls",
    "backpressure_events",
    "p50_ms",
    "p99_ms",
    "p999_ms",
    "window_s",
    "mpf_messages",
)


def detect_knee(points: list[dict], tolerance: float = 0.90) -> float | None:
    """First offered load past the sweep's measured capacity.

    Capacity is the best goodput any point achieved; the knee is the
    first offered load above ``capacity / tolerance`` — where the
    goodput curve demonstrably stops tracking the offered load.  Points
    must be sorted by ``offered_rps``; returns ``None`` when no swept
    load exceeded capacity (service unsaturated across the range).

    Comparing against measured capacity rather than the nominal rate
    keeps the detector honest on short schedules: an open-loop run's
    measurement window carries fixed edges (the random last arrival,
    batch-formation delay, the drain tail), so even an unloaded point
    completes a few percent under nominal — but it still *bounds
    capacity from below*, which is all this needs.
    """
    cap = max(p["goodput_rps"] for p in points)
    for p in points:
        if p["offered_rps"] > cap / tolerance:
            return p["offered_rps"]
    return None


@dataclass
class SLOReport:
    """One sweep's SLO document: per-config goodput/latency curves."""

    runtime: str
    seed: int
    #: label -> {"shape": {...}, "points": [...], "knee_rps": float|None}
    configs: dict = field(default_factory=dict)
    #: Free-form findings (stall reports, tracing notes).
    findings: list = field(default_factory=list)

    def add_config(self, label: str, shape: dict,
                   points: list[dict]) -> None:
        self.configs[label] = {
            "shape": shape,
            "points": points,
            "knee_rps": detect_knee(points),
        }

    def knee_goodput(self, label: str) -> float | None:
        """Peak goodput at or past the knee (the saturated plateau)."""
        cfg = self.configs[label]
        knee = cfg["knee_rps"]
        pts = cfg["points"]
        sat = [p for p in pts if knee is None or p["offered_rps"] >= knee]
        return max((p["goodput_rps"] for p in sat), default=None)

    def to_dict(self) -> dict:
        return {
            "schema": "mpf-serve-slo/1",
            "runtime": self.runtime,
            "seed": self.seed,
            "configs": self.configs,
            "findings": list(self.findings),
            "total_mpf_messages": sum(
                p["mpf_messages"]
                for cfg in self.configs.values() for p in cfg["points"]),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    # -- presentation -------------------------------------------------------

    def format_table(self) -> str:
        lines = [f"serve: open-loop SLO sweep — {self.runtime} runtime, "
                 f"seed {self.seed}"]
        head = ["offered/s", "goodput/s", "p50 ms", "p99 ms", "p999 ms",
                "shed", "stalls", "bp"]
        for label, cfg in self.configs.items():
            knee = cfg["knee_rps"]
            knee_txt = f"knee @ {knee:g} rps" if knee else "no knee in range"
            lines.append("")
            lines.append(f"  [{label}] {knee_txt}")
            rows = [head]
            for p in cfg["points"]:
                rows.append([
                    f"{p['offered_rps']:g}",
                    f"{p['goodput_rps']:.1f}",
                    f"{p['p50_ms']:.2f}",
                    f"{p['p99_ms']:.2f}",
                    f"{p['p999_ms']:.2f}",
                    str(p["shed"]),
                    str(p["stalls"]),
                    str(p["backpressure_events"]),
                ])
            widths = [max(len(r[i]) for r in rows) for i in range(len(head))]
            for i, row in enumerate(rows):
                lines.append("    " + "  ".join(
                    c.rjust(w) for c, w in zip(row, widths)))
                if i == 0:
                    lines.append("    " + "-" * (sum(widths)
                                                 + 2 * (len(widths) - 1)))
        for f in self.findings:
            lines.append(f"  (!) {f}")
        return "\n".join(lines)


def _fail(path: str, msg: str) -> None:
    raise ValueError(f"SLO document invalid at {path}: {msg}")


def validate_slo(doc: dict) -> None:
    """Structurally validate an SLO document; raises ``ValueError``."""
    if not isinstance(doc, dict):
        _fail("$", "not an object")
    if doc.get("schema") != "mpf-serve-slo/1":
        _fail("$.schema", f"unknown schema {doc.get('schema')!r}")
    if not isinstance(doc.get("runtime"), str):
        _fail("$.runtime", "missing or not a string")
    if not isinstance(doc.get("seed"), int):
        _fail("$.seed", "missing or not an int")
    configs = doc.get("configs")
    if not isinstance(configs, dict) or not configs:
        _fail("$.configs", "missing or empty")
    for label, cfg in configs.items():
        base = f"$.configs[{label!r}]"
        if not isinstance(cfg, dict):
            _fail(base, "not an object")
        if not isinstance(cfg.get("shape"), dict):
            _fail(f"{base}.shape", "missing or not an object")
        knee = cfg.get("knee_rps")
        if knee is not None and not isinstance(knee, (int, float)):
            _fail(f"{base}.knee_rps", "not a number or null")
        points = cfg.get("points")
        if not isinstance(points, list) or not points:
            _fail(f"{base}.points", "missing or empty")
        last = None
        for i, p in enumerate(points):
            ppath = f"{base}.points[{i}]"
            if not isinstance(p, dict):
                _fail(ppath, "not an object")
            for key in POINT_FIELDS:
                if not isinstance(p.get(key), (int, float)):
                    _fail(f"{ppath}.{key}", "missing or not a number")
            if last is not None and p["offered_rps"] < last:
                _fail(f"{ppath}.offered_rps", "points not sorted by load")
            last = p["offered_rps"]
    if not isinstance(doc.get("findings"), list):
        _fail("$.findings", "missing or not a list")
    if not isinstance(doc.get("total_mpf_messages"), int):
        _fail("$.total_mpf_messages", "missing or not an int")


# -- the windowed-telemetry document (mpf-serve-timeline/1) -------------------


def build_timeline_doc(runtime: str, seed: int, probe_rps: float,
                       timeline, findings, comparison: dict | None = None,
                       ) -> dict:
    """Assemble the ``mpf-serve-timeline/1`` document for one probe.

    ``timeline`` is a :class:`repro.obs.Timeline`; ``findings`` the
    :class:`repro.obs.HealthEngine` findings for the same probe;
    ``comparison`` the optional closed-vs-open-loop section the serve
    CLI builds.  The result round-trips through JSON unchanged and
    passes :func:`validate_timeline`.
    """
    return {
        "schema": "mpf-serve-timeline/1",
        "runtime": runtime,
        "seed": seed,
        "probe_rps": probe_rps,
        "timeline": timeline.to_doc(),
        "findings": [f.to_dict() for f in findings],
        "comparison": comparison,
    }


def _tfail(path: str, msg: str) -> None:
    raise ValueError(f"timeline document invalid at {path}: {msg}")


def _check_num(doc: dict, path: str, key: str) -> None:
    v = doc.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        _tfail(f"{path}.{key}", "missing or not a number")


def validate_timeline(doc: dict) -> None:
    """Strict structural check of an ``mpf-serve-timeline/1`` document.

    The ``telemetry-smoke`` CI gate runs this on the document a quick
    sweep emits; like :func:`validate_slo` it makes the format a
    contract.  Raises :class:`ValueError` at the first violation.
    """
    if not isinstance(doc, dict):
        _tfail("$", "not an object")
    if doc.get("schema") != "mpf-serve-timeline/1":
        _tfail("$.schema", f"unknown schema {doc.get('schema')!r}")
    if not isinstance(doc.get("runtime"), str):
        _tfail("$.runtime", "missing or not a string")
    if not isinstance(doc.get("seed"), int):
        _tfail("$.seed", "missing or not an int")
    _check_num(doc, "$", "probe_rps")
    tl = doc.get("timeline")
    if not isinstance(tl, dict):
        _tfail("$.timeline", "missing or not an object")
    width = tl.get("width")
    if not isinstance(width, (int, float)) or width <= 0:
        _tfail("$.timeline.width", "not a positive number")
    if tl.get("clock") not in ("sim", "wall"):
        _tfail("$.timeline.clock", f"not 'sim'/'wall': {tl.get('clock')!r}")
    names = tl.get("names")
    if not isinstance(names, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in names.items()):
        _tfail("$.timeline.names", "not an object of strings")
    windows = tl.get("windows")
    if not isinstance(windows, list) or not windows:
        _tfail("$.timeline.windows", "missing or empty")
    last = None
    for i, win in enumerate(windows):
        wpath = f"$.timeline.windows[{i}]"
        if not isinstance(win, dict):
            _tfail(wpath, "not an object")
        if not isinstance(win.get("index"), int):
            _tfail(f"{wpath}.index", "missing or not an int")
        _check_num(win, wpath, "start")
        if last is not None and win["index"] <= last:
            _tfail(f"{wpath}.index", "windows not strictly increasing")
        last = win["index"]
        counters = win.get("counters")
        if not isinstance(counters, dict) or not all(
                isinstance(k, str)
                and isinstance(v, (int, float)) and not isinstance(v, bool)
                for k, v in counters.items()):
            _tfail(f"{wpath}.counters", "not an object of numbers")
        gauges = win.get("gauges")
        if not isinstance(gauges, dict):
            _tfail(f"{wpath}.gauges", "missing or not an object")
        for k, cell in gauges.items():
            if not isinstance(cell, dict) or set(cell) != {
                    "n", "sum", "min", "max"} or not all(
                    isinstance(cell[f], (int, float))
                    and not isinstance(cell[f], bool) for f in cell):
                _tfail(f"{wpath}.gauges[{k!r}]",
                       "not {n, sum, min, max} numbers")
        digests = win.get("digests")
        if not isinstance(digests, dict):
            _tfail(f"{wpath}.digests", "missing or not an object")
        for k, dig in digests.items():
            if not isinstance(dig, dict) or not all(
                    isinstance(b, str) and b.lstrip("-").isdigit()
                    and isinstance(n, int) and n >= 0
                    for b, n in dig.items()):
                _tfail(f"{wpath}.digests[{k!r}]",
                       "not an object of integer bucket counts")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        _tfail("$.findings", "missing or not a list")
    for i, f in enumerate(findings):
        fpath = f"$.findings[{i}]"
        if not isinstance(f, dict):
            _tfail(fpath, "not an object")
        for key in ("kind", "severity", "series", "detail"):
            if not isinstance(f.get(key), str):
                _tfail(f"{fpath}.{key}", "missing or not a string")
        for key in ("onset_window", "onset_time"):
            v = f.get(key)
            if v is not None and (not isinstance(v, (int, float))
                                  or isinstance(v, bool)):
                _tfail(f"{fpath}.{key}", "not a number or null")
        if not isinstance(f.get("data"), dict):
            _tfail(f"{fpath}.data", "missing or not an object")
    comparison = doc.get("comparison")
    if comparison is not None:
        if not isinstance(comparison, dict):
            _tfail("$.comparison", "not an object or null")
        for side in ("open_loop", "closed_loop"):
            sec = comparison.get(side)
            spath = f"$.comparison.{side}"
            if not isinstance(sec, dict):
                _tfail(spath, "missing or not an object")
            if not isinstance(sec.get("label"), str):
                _tfail(f"{spath}.label", "missing or not a string")
            _check_num(sec, spath, "width")
            sends = sec.get("sends_per_window")
            if not isinstance(sends, list) or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in sends):
                _tfail(f"{spath}.sends_per_window", "not a list of numbers")
        fig = comparison.get("figure")
        if fig is not None and not isinstance(fig, str):
            _tfail("$.comparison.figure", "not a string or null")
