"""Offered-load sweeps: measure goodput and SLO latency per load point.

:func:`run_point` runs one topology at one offered load and reduces it
to an SLO point; :func:`run_sweep` sweeps loads for several
configurations (baseline vs batched vs batched+sharded) and assembles
the :class:`~repro.serve.slo.SLOReport`.  Point measurement reuses the
figure harness's :func:`~repro.bench.harness.run_series`, so ``--jobs``
parallelism — one deterministic simulation per pool worker, results
reassembled in sweep order — behaves exactly like the figure sweeps,
including the caveat that a 1-CPU container gains nothing from it.
"""

from __future__ import annotations

from functools import partial
from typing import Mapping, Sequence

from ..bench.harness import SweepResult, run_series
from ..machine.balance import MachineConfig
from ..obs.causal import StageStats
from ..obs.recorder import Recorder
from .arrivals import PoissonArrivals, schedule_digest
from .slo import SLOReport
from .topology import ServeShape, build_workers, serve_config, serve_machine

__all__ = ["client_schedules", "run_point", "run_sweep"]


def client_schedules(
    rate: float, n_requests: int, seed: int, clients: int,
) -> tuple[list[tuple[float, ...]], str]:
    """Split an aggregate Poisson load across ``clients`` generators.

    Each client gets an independent seeded stream at ``rate/clients``;
    the superposition of independent Poisson processes is Poisson at the
    aggregate rate.  Returns the per-client schedules plus a digest over
    their concatenation — the value cross-runtime reproducibility tests
    compare.
    """
    per, extra = divmod(n_requests, clients)
    schedules = []
    for i in range(clients):
        n = per + (1 if i < extra else 0)
        schedules.append(
            PoissonArrivals(rate / clients, max(1, n), seed * 613 + i)
            .times())
    digest = schedule_digest([t for s in schedules for t in s])
    return schedules, digest


def run_point(
    shape: ServeShape,
    rate: float,
    n_requests: int,
    seed: int = 1987,
    runtime: str = "sim",
    schedules: Sequence[Sequence[float]] | None = None,
    machine: MachineConfig | None = None,
    causal: bool = False,
    causal_max_events: int | None = 65536,
    timeline: bool = False,
    timeline_width: float = 0.05,
    recorder: Recorder | None = None,
) -> tuple[dict, Recorder | None]:
    """Run one offered-load point; returns ``(slo_point, recorder)``.

    ``schedules`` overrides the generated Poisson arrivals (trace-driven
    serving: pass one absolute-time schedule per client).  ``causal``
    attaches a bounded causal tracer, whose e2e delivery sketch and
    stall findings feed the observability exports.  ``timeline``
    additionally windows the point's traffic into ``timeline_width``-
    second buckets (:class:`repro.obs.Timeline`) — the substrate of the
    ``mpf-serve-timeline/1`` document and the online health findings.
    ``recorder`` supplies a pre-built recorder instead (the live scrape
    endpoint needs it *before* the run starts); it overrides the
    ``causal``/``timeline`` construction flags.
    """
    if schedules is None:
        schedules, digest = client_schedules(
            rate, n_requests, seed, shape.clients)
    else:
        schedules = [tuple(s) for s in schedules]
        digest = schedule_digest([t for s in schedules for t in s])
    offered = sum(len(s) for s in schedules)
    if machine is None:
        machine = serve_machine(shape)

    rec = recorder
    if rec is None and (causal or timeline):
        rec = Recorder(causal=causal, causal_max_events=causal_max_events,
                       timeline=timeline, timeline_width=timeline_width)
    workers = build_workers(shape, schedules, runtime=runtime,
                            machine=machine)
    if runtime == "sim":
        from ..runtime.sim import SimRuntime

        rt = SimRuntime(machine=machine, recorder=rec)
    elif runtime == "threads":
        from ..runtime.threads import ThreadRuntime

        rt = ThreadRuntime(recorder=rec, join_timeout=600)
    elif runtime == "procs":
        from ..runtime.procs import ProcRuntime

        rt = ProcRuntime(recorder=rec)
    else:
        raise ValueError(f"unknown runtime {runtime!r}")
    result = rt.run(workers, cfg=serve_config(shape))

    agg = result.results[f"p{shape.nprocs - 1}"]
    clients = [result.results[f"p{i}"] for i in range(shape.clients)]
    window = agg["t_last"] - agg["t0"]
    e2e = StageStats(agg["e2e"]) if agg["e2e"] else None
    point = {
        "offered_rps": rate,
        "goodput_rps": agg["completed"] / window if window > 0 else 0.0,
        "completed": agg["completed"],
        "offered": offered,
        "shed": sum(c["shed_overflow"] + c["shed_backpressure"]
                    for c in clients),
        "stalls": sum(c["stalls"] for c in clients),
        "backpressure_events": sum(c["backpressure_events"]
                                   for c in clients),
        "p50_ms": 1e3 * e2e.quantile_fine(0.5) if e2e else 0.0,
        "p99_ms": 1e3 * e2e.quantile_fine(0.99) if e2e else 0.0,
        "p999_ms": 1e3 * e2e.p999 if e2e else 0.0,
        "window_s": window,
        "mpf_messages": result.header["total_sends"],
        "schedule_digest": digest,
    }
    return point, rec


def _measure(rate: float, *, shape: ServeShape, n_per_rps: float,
             seed: int, runtime: str) -> tuple[float, dict]:
    """Picklable point measurement for :func:`run_series` pools.

    ``n_per_rps`` scales request count with load so every point's
    schedule covers a comparable time window.
    """
    n = max(shape.batch, round(rate * n_per_rps))
    point, _ = run_point(shape, rate, n, seed=seed, runtime=runtime)
    return point["goodput_rps"], point


def run_sweep(
    configs: Mapping[str, ServeShape],
    loads: Sequence[float],
    duration: float = 10.0,
    seed: int = 1987,
    runtime: str = "sim",
    jobs: int = 1,
) -> tuple[SLOReport, SweepResult]:
    """Sweep ``loads`` (aggregate requests/s) for each configuration.

    ``duration`` is the nominal schedule length per point in seconds, so
    a point at rate R offers ``R * duration`` requests.  Returns the SLO
    report plus the underlying :class:`SweepResult` (figure-style table
    of goodput vs offered load).
    """
    report = SLOReport(runtime=runtime, seed=seed)
    sweep = SweepResult(
        figure="serve",
        title="open-loop goodput vs offered load",
        x_label="offered rps",
        y_label="goodput, logical requests per second",
    )
    for label, shape in configs.items():
        measure = partial(_measure, shape=shape, n_per_rps=duration,
                          seed=seed, runtime=runtime)
        series = run_series(sweep, label, loads, measure, jobs=jobs)
        points = [p.extra for p in series.points]
        report.add_config(label, _shape_dict(shape), points)
        knee = report.configs[label]["knee_rps"]
        sweep.note(f"{label}: " + (f"knee at {knee:g} rps" if knee
                                   else "no knee in range"))
    return report, sweep


def _shape_dict(shape: ServeShape) -> dict:
    from dataclasses import asdict

    return asdict(shape)
