"""Open-loop arrival schedules.

A schedule is a plain tuple of absolute arrival times (seconds from the
start of the measured window), generated *before* any runtime is
involved.  That split is what makes the serving experiments
reproducible: the same seed yields the same schedule whether the
topology then runs on the simulated Balance 21000 or on real threads,
and a trace-driven schedule replays an external trace exactly.

The closed-loop harness (:mod:`repro.bench.workloads`) needs nothing of
the sort — its processes issue the next request only when the previous
one finished.  Open-loop clients instead *pace* themselves against the
schedule (see :mod:`repro.serve.topology`) and keep admitting work even
when the service has fallen behind, which is what exposes saturation
knees and overload behaviour.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["PoissonArrivals", "TraceArrivals", "schedule_digest"]


def schedule_digest(times: Sequence[float]) -> str:
    """Stable hex digest of a schedule (microsecond resolution).

    Tests use this to assert that two runtimes replayed the *same*
    arrival process: the digest depends only on the schedule, never on
    what the service did with it.
    """
    h = hashlib.sha256()
    h.update(len(times).to_bytes(8, "little"))
    for t in times:
        h.update(round(t * 1e6).to_bytes(8, "little", signed=True))
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class PoissonArrivals:
    """Seeded Poisson process: exponential gaps at ``rate`` arrivals/s."""

    rate: float
    n: int
    seed: int = 1987

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.n < 1:
            raise ValueError("schedule needs at least one arrival")

    def times(self) -> tuple[float, ...]:
        rng = random.Random(self.seed)
        t = 0.0
        out = []
        for _ in range(self.n):
            t += rng.expovariate(self.rate)
            out.append(t)
        return tuple(out)

    @property
    def duration(self) -> float:
        """Nominal schedule length in seconds (``n / rate``)."""
        return self.n / self.rate


@dataclass(frozen=True)
class TraceArrivals:
    """Trace-driven schedule: replay explicit arrival times.

    ``times_in`` may be absolute times or inter-arrival gaps
    (``gaps=True``); either way :meth:`times` returns monotonically
    non-decreasing absolute times, so a recorded production trace can be
    replayed against any topology and runtime.
    """

    times_in: tuple[float, ...]
    gaps: bool = False

    def __init__(self, times_in: Iterable[float], gaps: bool = False) -> None:
        object.__setattr__(self, "times_in", tuple(float(t) for t in times_in))
        object.__setattr__(self, "gaps", gaps)
        if not self.times_in:
            raise ValueError("trace schedule is empty")
        if any(t < 0 for t in self.times_in):
            raise ValueError("trace times must be non-negative")
        if not gaps and any(
                b < a for a, b in zip(self.times_in, self.times_in[1:])):
            raise ValueError("absolute trace times must be sorted")

    def times(self) -> tuple[float, ...]:
        if not self.gaps:
            return self.times_in
        t = 0.0
        out = []
        for gap in self.times_in:
            t += gap
            out.append(t)
        return tuple(out)

    @property
    def n(self) -> int:
        return len(self.times_in)

    @property
    def duration(self) -> float:
        return self.times()[-1]
