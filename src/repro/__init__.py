"""repro — reproduction of MPF (Malony, Reed & McGuire, ICPP 1987).

MPF is a portable message-passing facility for shared-memory
multiprocessors built around *logical, named virtual circuits* (LNVCs):
named conversations that processes join and leave freely, with FCFS
(exactly-one-consumer) and BROADCAST (everyone-sees-everything)
receivers.

Quick start (simulated Sequent Balance 21000)::

    from repro import SimRuntime, FCFS

    def producer(env):
        cid = yield from env.open_send("jobs")
        for i in range(4):
            yield from env.message_send(cid, f"job {i}".encode())
        yield from env.close_send(cid)

    def consumer(env):
        cid = yield from env.open_receive("jobs", FCFS)
        got = []
        for _ in range(2):
            got.append((yield from env.message_receive(cid)))
        yield from env.close_receive(cid)
        return got

    result = SimRuntime().run([producer, consumer, consumer])
    print(result.results, result.elapsed)

See README.md for the architecture and DESIGN.md for the mapping from the
paper to this code.
"""

from .core import (
    BROADCAST,
    FCFS,
    Costs,
    DEFAULT_COSTS,
    MPFConfig,
    MPFError,
    Protocol,
)
from .machine import BALANCE_21000, DeadlockError, MachineConfig, Tracer
from .obs import EffectLog, Recorder
from .runtime import (
    BlockingMPF,
    Env,
    MPFSystem,
    PosixSegment,
    ProcRuntime,
    RunResult,
    SimRuntime,
    ThreadRuntime,
)
from . import patterns

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "FCFS",
    "BROADCAST",
    "Protocol",
    "MPFConfig",
    "MPFError",
    "Costs",
    "DEFAULT_COSTS",
    "MachineConfig",
    "BALANCE_21000",
    "DeadlockError",
    "Env",
    "RunResult",
    "SimRuntime",
    "ThreadRuntime",
    "ProcRuntime",
    "MPFSystem",
    "BlockingMPF",
    "PosixSegment",
    "Tracer",
    "Recorder",
    "EffectLog",
    "patterns",
]
