"""Coordination patterns built purely on the eight MPF primitives.

The paper closes §1 by claiming LNVCs "provide a fully general
communication paradigm ... dialogue, group discussions, and lectures".
This module substantiates the claim: barriers and the familiar collective
operations (gather, scatter, broadcast, reduce, all-to-all) are expressed
here with nothing but ``open_send`` / ``open_receive`` / ``message_send``
/ ``message_receive`` / ``close_*`` — no shared variables, no extra
synchronization.

The lost-message discipline
---------------------------
MPF deletes a circuit — discarding queued messages — when its *last*
connection closes (paper §2), and the paper warns that a sender which
closes before any receiver joins can silently lose its messages (§3.2).
Two rules make every pattern below loss-free on any interleaving:

1. **Hold your send connection until you have evidence the conversation
   has progressed** (a reply arrived, or a release was broadcast).  While
   any connection is open the circuit — and its queued messages —
   survives, and FCFS messages are held for receivers that join later
   (DESIGN.md §4 retirement rule).
2. **Open a BROADCAST connection before telling anyone to broadcast to
   you** — broadcast receivers only hear messages sent after they join.

All functions are generator functions: call with ``yield from``.
Payloads are tagged with the sender's rank in a 4-byte header so results
can be ordered deterministically regardless of arrival order.
"""

from __future__ import annotations

import struct
from typing import Callable, Sequence

from .core.protocol import BROADCAST, FCFS
from .core.work import Work
from .runtime.base import Env

__all__ = [
    "tag",
    "untag",
    "barrier",
    "gather",
    "scatter",
    "broadcast",
    "reduce",
    "allreduce",
    "all_to_all",
    "exchange",
    "select_receive",
    "Mailboxes",
]

_RANK = struct.Struct("<I")


def tag(rank: int, payload: bytes) -> bytes:
    """Prefix ``payload`` with the sender's rank."""
    return _RANK.pack(rank) + payload


def untag(message: bytes) -> tuple[int, bytes]:
    """Split a rank-tagged message into ``(rank, payload)``."""
    return _RANK.unpack_from(message)[0], message[_RANK.size :]


def barrier(env: Env, name: str, n: int, coordinator: int = 0):
    """Synchronize ``n`` processes at a named barrier.

    Arrivals flow to the coordinator over an FCFS circuit; the release is
    broadcast once everyone has arrived.  Participants open the release
    circuit *before* announcing arrival (rule 2) and keep their arrival
    send connection open until released (rule 1), so neither side of the
    rendezvous can be lost.

    ``name`` must be unique per use (e.g. suffix an iteration number).
    """
    out_id = yield from env.open_receive(f"{name}.out", BROADCAST)
    in_id = yield from env.open_send(f"{name}.in")
    yield from env.message_send(in_id, tag(env.rank, b""))
    if env.rank == coordinator:
        arrivals = yield from env.open_receive(f"{name}.in", FCFS)
        for _ in range(n):
            yield from env.message_receive(arrivals)
        yield from env.close_receive(arrivals)
        release = yield from env.open_send(f"{name}.out")
        yield from env.message_send(release, b"go")
        yield from env.close_send(release)
    yield from env.message_receive(out_id)
    yield from env.close_send(in_id)
    yield from env.close_receive(out_id)


def gather(env: Env, name: str, root: int, n: int, payload: bytes):
    """Collect one payload from each of ``n`` processes at ``root``.

    Returns the list of payloads ordered by contributor rank at the root,
    ``None`` elsewhere.  The ``n`` participants may be any rank subset
    (e.g. workers 1..P gathering without their arbiter).  Contributors
    hold their send connection open until the root broadcasts completion,
    so payloads sent before the root joins cannot be discarded by an
    early close.
    """
    if env.rank == root:
        recv_id = yield from env.open_receive(name, FCFS)
        parts: dict[int, bytes] = {root: payload}
        while len(parts) < n:
            rank, data = untag((yield from env.message_receive(recv_id)))
            parts[rank] = data
        done = yield from env.open_send(f"{name}.done")
        yield from env.message_send(done, b"done")
        yield from env.close_send(done)
        yield from env.close_receive(recv_id)
        return [parts[r] for r in sorted(parts)]
    done_id = yield from env.open_receive(f"{name}.done", BROADCAST)
    send_id = yield from env.open_send(name)
    yield from env.message_send(send_id, tag(env.rank, payload))
    yield from env.message_receive(done_id)
    yield from env.close_send(send_id)
    yield from env.close_receive(done_id)
    return None


def scatter(env: Env, name: str, root: int, parts: Sequence[bytes] | None):
    """Distribute ``parts[i]`` from ``root`` to process ``i``.

    Each receiver opens its per-destination circuit, announces readiness,
    and holds the readiness send connection open until its part arrives;
    the root therefore only ever sends to circuits with a connected
    receiver.  Returns this process's part on every process.
    """
    if env.rank == root:
        if parts is None:
            raise ValueError("root must supply the parts to scatter")
        if len(parts) != env.nprocs and len(parts) < 1:
            raise ValueError("need one part per process")
        ready = yield from env.open_receive(f"{name}.rdy", FCFS)
        for _ in range(len(parts) - 1):
            yield from env.message_receive(ready)
        for dest, part in enumerate(parts):
            if dest == root:
                continue
            cid = yield from env.open_send(f"{name}.{dest}")
            yield from env.message_send(cid, part)
            yield from env.close_send(cid)
        yield from env.close_receive(ready)
        return parts[root]
    part_id = yield from env.open_receive(f"{name}.{env.rank}", FCFS)
    rdy = yield from env.open_send(f"{name}.rdy")
    yield from env.message_send(rdy, tag(env.rank, b""))
    mine = yield from env.message_receive(part_id)
    yield from env.close_send(rdy)
    yield from env.close_receive(part_id)
    return mine


def broadcast(env: Env, name: str, root: int, n: int, payload: bytes | None = None):
    """Deliver one payload from ``root`` to all ``n`` processes.

    Uses a true BROADCAST circuit (one send, concurrent receives — the
    mechanism behind Figure 5), made reliable by a ready handshake: the
    root sends only after all ``n - 1`` receivers confirm their broadcast
    connection is open, and each receiver holds its ready send connection
    until the data arrives.  Returns the payload on every process.
    """
    if env.rank == root:
        if payload is None:
            raise ValueError("root must supply the broadcast payload")
        ready = yield from env.open_receive(f"{name}.ready", FCFS)
        for _ in range(n - 1):
            yield from env.message_receive(ready)
        cid = yield from env.open_send(name)
        yield from env.message_send(cid, payload)
        yield from env.close_send(cid)
        yield from env.close_receive(ready)
        return payload
    rid = yield from env.open_receive(name, BROADCAST)
    ready = yield from env.open_send(f"{name}.ready")
    yield from env.message_send(ready, tag(env.rank, b""))
    data = yield from env.message_receive(rid)
    yield from env.close_send(ready)
    yield from env.close_receive(rid)
    return data


def reduce(
    env: Env,
    name: str,
    root: int,
    n: int,
    payload: bytes,
    op: Callable[[bytes, bytes], bytes],
):
    """Fold one payload per process into a single value at ``root``.

    ``op`` combines two payloads; it must be associative and commutative
    (arrival order is nondeterministic).  Returns the folded value at the
    root, ``None`` elsewhere.
    """
    parts = yield from gather(env, name, root, n, payload)
    if parts is None:
        return None
    acc = parts[0]
    for part in parts[1:]:
        acc = op(acc, part)
    return acc


def allreduce(
    env: Env,
    name: str,
    n: int,
    payload: bytes,
    op: Callable[[bytes, bytes], bytes],
    root: int = 0,
):
    """Reduce at ``root`` then broadcast the result to everyone."""
    acc = yield from reduce(env, f"{name}.r", root, n, payload, op)
    result = yield from broadcast(
        env, f"{name}.b", root, n, acc if env.rank == root else None
    )
    return result


def all_to_all(env: Env, name: str, n: int, parts: Sequence[bytes]):
    """Exchange ``parts[j]`` from every process ``i`` to every process ``j``.

    One FCFS mailbox circuit per destination (the communication structure
    of the paper's `random` benchmark, Figure 6).  Every process opens its
    own mailbox, then a barrier guarantees all mailboxes have a connected
    receiver before anyone sends.  Returns the payloads received, indexed
    by source rank; slot ``env.rank`` holds this process's own
    contribution, delivered locally.
    """
    if len(parts) != n:
        raise ValueError("need exactly one part per process")
    rid = yield from env.open_receive(f"{name}.{env.rank}", FCFS)
    yield from barrier(env, f"{name}.bar", n)
    for dest in range(n):
        if dest == env.rank:
            continue
        cid = yield from env.open_send(f"{name}.{dest}")
        yield from env.message_send(cid, tag(env.rank, parts[dest]))
        yield from env.close_send(cid)
    received: dict[int, bytes] = {env.rank: parts[env.rank]}
    while len(received) < n:
        rank, data = untag((yield from env.message_receive(rid)))
        received[rank] = data
    yield from env.close_receive(rid)
    return [received[i] for i in range(n)]


def select_receive(env: Env, lnvc_ids: Sequence[int], backoff_instrs: int = 400):
    """Receive from whichever of several circuits has a message first.

    MPF has no ``select``; the paper's tool for waiting on more than one
    circuit is polling with ``check_receive`` (§2) — the idiom the
    Gauss–Jordan workers use to wait on "my advise circuit *or* the
    pivot broadcast".  This helper codifies it: poll each circuit in
    order, back off ``backoff_instrs`` of compute between rounds (so
    pollers do not monopolize the circuit locks), and return
    ``(lnvc_id, payload)`` for the first circuit with traffic.

    Reliability caveat, inherited from ``check_receive``'s documented
    race: use this only on circuits where a positive check cannot be
    invalidated — BROADCAST connections (guaranteed by the paper) or
    FCFS circuits on which this process is the *sole* FCFS receiver
    (advise circuits, private mailboxes).  With competing FCFS receivers
    a stolen message would leave the caller blocked on one circuit while
    another has traffic — exactly the §2 hazard, which no polling
    wrapper can remove.
    """
    if not lnvc_ids:
        raise ValueError("select_receive needs at least one circuit")
    # The backoff charge is fused into the next round's first check
    # (ChargeMany via ``prelude``), halving the poll loop's scheduler
    # round-trips; the charge stream — and hence all simulated timing —
    # is identical to a separate ``env.compute`` between rounds.
    backoff = Work(instrs=backoff_instrs, label="app-compute")
    pending: Work | None = None
    while True:
        for cid in lnvc_ids:
            if (yield from env.check_receive(cid, prelude=pending)):
                payload = yield from env.message_receive(cid)
                return cid, payload
            pending = None
        pending = backoff


def exchange(env: Env, name: str, peer: int, payload: bytes):
    """Symmetric pairwise exchange with ``peer`` (halo-swap step).

    Each direction uses its own FCFS circuit named by the (source,
    destination) pair.  The inbound circuit is opened before sending, and
    the outbound send connection is held until the peer's payload arrives
    — the peer's message proves it has joined our outbound circuit, so
    closing can no longer discard anything.  Returns the peer's payload.

    For repeated exchanges with fixed neighbours use :class:`Mailboxes`,
    which keeps circuits open across iterations.
    """
    rid = yield from env.open_receive(f"{name}.{peer}.{env.rank}", FCFS)
    out = yield from env.open_send(f"{name}.{env.rank}.{peer}")
    yield from env.message_send(out, payload)
    data = yield from env.message_receive(rid)
    yield from env.close_send(out)
    yield from env.close_receive(rid)
    return data


class Mailboxes:
    """Long-lived per-pair circuits for iterative neighbour exchange.

    Opening and closing circuits inside an inner loop costs an open/close
    per message; the SOR solver (Figure 8) instead opens each
    neighbour-pair circuit once and reuses it every iteration, as the
    hypercube original kept its channels open.  Usage::

        boxes = Mailboxes(env, "halo")
        yield from boxes.connect([north, south])   # peer ranks
        ...each iteration...
        data = yield from boxes.swap(north, payload_north)
        ...
        yield from boxes.close()

    :meth:`close` is safe once a full exchange has completed with every
    peer (their reply proves they joined our outbound circuits).
    """

    def __init__(self, env: Env, name: str) -> None:
        self.env = env
        self.name = name
        self._out: dict[int, int] = {}
        self._in: dict[int, int] = {}

    def connect(self, peers: Sequence[int]):
        """Open send and receive circuits to every peer in ``peers``."""
        env = self.env
        for peer in peers:
            self._in[peer] = yield from env.open_receive(
                f"{self.name}.{peer}.{env.rank}", FCFS
            )
            self._out[peer] = yield from env.open_send(
                f"{self.name}.{env.rank}.{peer}"
            )

    @property
    def peers(self) -> list[int]:
        """Ranks connected via :meth:`connect`."""
        return list(self._out)

    def send(self, peer: int, payload: bytes):
        """Send to a connected peer."""
        yield from self.env.message_send(self._out[peer], payload)

    def receive(self, peer: int):
        """Receive from a connected peer."""
        data = yield from self.env.message_receive(self._in[peer])
        return data

    def swap(self, peer: int, payload: bytes):
        """Send then receive — the classic halo exchange step."""
        yield from self.send(peer, payload)
        data = yield from self.receive(peer)
        return data

    def swap_all(self, payloads: dict[int, bytes]):
        """Send to every peer first, then collect every reply.

        Send-all-then-receive-all avoids the stepwise rendezvous ordering
        a naive loop of :meth:`swap` would impose on grids.
        """
        for peer, payload in payloads.items():
            yield from self.send(peer, payload)
        replies: dict[int, bytes] = {}
        for peer in payloads:
            replies[peer] = yield from self.receive(peer)
        return replies

    def close(self):
        """Close every circuit opened by :meth:`connect`."""
        env = self.env
        for cid in self._out.values():
            yield from env.close_send(cid)
        for cid in self._in.values():
            yield from env.close_receive(cid)
        self._out.clear()
        self._in.clear()
