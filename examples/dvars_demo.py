#!/usr/bin/env python3
"""Distributed variables over LNVCs ([Debe86], cited in paper §1).

A shared counter and a shared blackboard, accessed only through the
message-passing read/write protocol — "a name space that is global to
the processes but accessible only by a message passing protocol".
Four workers bump the counter concurrently; `fetch_add` gives each a
unique ticket, proving the read-modify-write is atomic.

Run:  python examples/dvars_demo.py
"""

from repro import SimRuntime
from repro.ext.dvars import DVarClient, dvar_server

N_WORKERS = 4
BUMPS = 3


def server(env):
    return (
        yield from dvar_server(
            env, "tickets", initial=(0).to_bytes(8, "little", signed=True)
        )
    )


def worker(env):
    dv = DVarClient(env, "tickets")
    yield from dv.connect()
    tickets = []
    for _ in range(BUMPS):
        tickets.append((yield from dv.fetch_add(1)))
    yield from dv.close()
    return tickets


def supervisor(env):
    dv = DVarClient(env, "tickets")
    yield from dv.connect()
    while True:
        version, raw = yield from dv.read()
        if version >= N_WORKERS * BUMPS:
            break
    total = int.from_bytes(raw, "little", signed=True)
    yield from dv.stop_server()
    yield from dv.close()
    return total


def main() -> None:
    result = SimRuntime().run(
        [server] + [worker] * N_WORKERS + [supervisor],
        names=["server"] + [f"w{i}" for i in range(N_WORKERS)] + ["super"],
    )
    tickets = sorted(
        t for i in range(N_WORKERS) for t in result.results[f"w{i}"]
    )
    print("tickets drawn per worker:")
    for i in range(N_WORKERS):
        print(f"  w{i}: {result.results[f'w{i}']}")
    print(f"all tickets unique: {tickets == list(range(N_WORKERS * BUMPS))}")
    print(f"final counter value: {result.results['super']}")
    assert tickets == list(range(N_WORKERS * BUMPS))


if __name__ == "__main__":
    main()
