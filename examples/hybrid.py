#!/usr/bin/env python3
"""Hybrid parallel programming: shared variables + message passing.

Paper §5: "A particularly interesting benefit of a message passing
facility for shared memory machines is the ability to develop a program
using a hybrid parallel programming paradigm."

Threads share a NumPy array *directly* (the shared-memory paradigm) and
coordinate work assignment and completion *by messages* (the MPF
paradigm): a coordinator mails row ranges to workers over FCFS
circuits; workers write their results straight into the shared array —
no data ever travels through a message, only control.

Run:  python examples/hybrid.py
"""

import struct
import threading

import numpy as np

from repro import FCFS, MPFConfig, MPFSystem

N, WORKERS = 512, 3
_RANGE = struct.Struct("<II")


def main() -> None:
    system = MPFSystem(MPFConfig(max_lnvcs=8, max_processes=WORKERS + 1))
    shared = np.zeros(N)  # the shared-memory half of the hybrid
    x = np.linspace(0.0, 1.0, N)

    def worker(pid):
        mpf = system.client(pid)
        jobs = mpf.open_receive("jobs", FCFS)
        done = mpf.open_send("done")
        while True:
            msg = mpf.message_receive(jobs)
            lo, hi = _RANGE.unpack(msg)
            if lo == hi:  # poison pill
                break
            # Shared-memory paradigm: compute in place, no data messages.
            shared[lo:hi] = np.sin(np.pi * x[lo:hi]) ** 2
            mpf.message_send(done, msg)
        mpf.close_send(done)
        mpf.close_receive(jobs)

    threads = [
        threading.Thread(target=worker, args=(pid,))
        for pid in range(1, WORKERS + 1)
    ]
    for t in threads:
        t.start()

    boss = system.client(0)
    jobs = boss.open_send("jobs")
    done = boss.open_receive("done", FCFS)
    chunk = 64
    n_jobs = 0
    for lo in range(0, N, chunk):
        boss.message_send(jobs, _RANGE.pack(lo, min(lo + chunk, N)))
        n_jobs += 1
    for _ in range(n_jobs):
        boss.message_receive(done)  # completion tokens, not data
    for _ in range(WORKERS):
        boss.message_send(jobs, _RANGE.pack(0, 0))
    for t in threads:
        t.join()
    boss.close_send(jobs)
    boss.close_receive(done)

    expected = np.sin(np.pi * x) ** 2
    print(f"rows computed by {WORKERS} workers over {n_jobs} mailed jobs")
    print(f"result correct: {np.allclose(shared, expected)}")
    print("data moved through shared memory; only control moved by message")
    assert np.allclose(shared, expected)


if __name__ == "__main__":
    main()
