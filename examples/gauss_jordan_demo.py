#!/usr/bin/env python3
"""Parallel Gauss-Jordan linear solver (the paper's Figure 7 workload).

Solves a random 64x64 system with 1..8 worker processes on the
simulated Balance 21000, verifies every answer against NumPy, and
prints the speedup curve — the classic computation-vs-communication
balance the paper analyses.

Run:  python examples/gauss_jordan_demo.py [n]
"""

import sys

import numpy as np

from repro.apps.gauss_jordan import (
    gauss_jordan_parallel,
    gj_sequential_sim_time,
    make_system,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    a, b = make_system(n)
    expected = np.linalg.solve(a, b)
    t_seq = gj_sequential_sim_time(n)
    print(f"Gauss-Jordan with partial pivoting, {n}x{n} system")
    print(f"sequential solve on the simulated Balance 21000: {t_seq:.2f} s\n")
    print(f"{'workers':>8} {'sim seconds':>12} {'speedup':>8} {'verified':>9}")
    for p in (1, 2, 4, 8):
        result = gauss_jordan_parallel(a, b, p)
        ok = np.allclose(result.x, expected)
        print(
            f"{p:>8} {result.elapsed:>12.2f} {t_seq / result.elapsed:>8.2f}"
            f" {'yes' if ok else 'NO':>9}"
        )
        if not ok:
            raise SystemExit("solution mismatch — this is a bug")
    print(
        "\nEach iteration: local pivot search -> maxima to the arbiter "
        "(FCFS) -> advise\nthe winner (FCFS) -> pivot row to everyone "
        "(BROADCAST) -> local sweep."
    )


if __name__ == "__main__":
    main()
