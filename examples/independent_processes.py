#!/usr/bin/env python3
"""MPF between *independent* OS processes, rendezvousing by name.

The paper ran "a group of Unix processes" over a mapped shared region
(§4).  This example goes one step further than fork: it launches a
completely separate ``python`` interpreter which attaches to the named
segment created here and exchanges messages with us — two programs that
share nothing but a segment name and a config.

Run:  python examples/independent_processes.py
"""

import subprocess
import sys
import textwrap
import uuid

from repro import FCFS, MPFConfig
from repro.core.inspect import inspect_segment, render_segment
from repro.runtime.posix import PosixSegment

CFG = MPFConfig(max_lnvcs=8, max_processes=4, max_messages=64,
                message_pool_bytes=1 << 16)

WORKER = textwrap.dedent(
    """
    import sys
    from repro import FCFS, MPFConfig
    from repro.runtime.posix import PosixSegment

    cfg = MPFConfig(max_lnvcs=8, max_processes=4, max_messages=64,
                    message_pool_bytes=1 << 16)
    with PosixSegment.attach(sys.argv[1], cfg) as seg:
        mpf = seg.client(1)
        work = mpf.open_receive("work", FCFS)
        answers = mpf.open_send("answers")
        while True:
            task = mpf.message_receive(work)
            if task == b"EOF":
                break
            mpf.message_send(answers, task[::-1])
        mpf.close_receive(work)
        mpf.close_send(answers)
    """
)


def main() -> None:
    name = f"mpf-demo-{uuid.uuid4().hex[:8]}"
    seg = PosixSegment.create(name, CFG)
    try:
        print(f"created named segment '{name}' "
              f"({seg.view.layout.total_size} bytes in /dev/shm)")
        child = subprocess.Popen([sys.executable, "-c", WORKER, name])
        mpf = seg.client(0)
        work = mpf.open_send("work")
        answers = mpf.open_receive("answers", FCFS)
        for word in (b"stressed", b"repaid", b"drawer"):
            mpf.message_send(work, word)
            print(f"  sent {word.decode():>10}  ->  "
                  f"{mpf.message_receive(answers).decode()}")
        print("\nlive segment state (from the inspector):")
        print(render_segment(inspect_segment(seg.view)))
        mpf.message_send(work, b"EOF")
        child.wait(timeout=60)
        mpf.close_send(work)
        mpf.close_receive(answers)
        print(f"\nchild exited {child.returncode}; unlinking segment")
    finally:
        seg.unlink()


if __name__ == "__main__":
    main()
