#!/usr/bin/env python3
"""Parallel SOR Poisson solver (the paper's Figure 8 workload).

Solves -∇²u = 2π²·sin(πx)·sin(πy) on the unit square with an N×N grid
of worker processes plus a convergence monitor, all talking over MPF
circuits: FCFS circuits for the halo exchanges ("interprocess
communication among neighbors corresponds naturally to FCFS LNVC's")
and a BROADCAST circuit for the monitor's verdicts.

Run:  python examples/sor_demo.py [grid]
"""

import sys

import numpy as np

from repro.apps.sor import poisson_reference, sor_parallel, sor_sequential


def main() -> None:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 33
    exact = poisson_reference(m)
    seq = sor_sequential(m, tol=1e-6)
    print(f"Poisson problem on a {m}x{m} grid "
          f"(sequential: {seq.iterations} SOR iterations)\n")
    print(f"{'procs':>6} {'iters':>6} {'sim s/iter':>11} "
          f"{'max err vs analytic':>20} {'== sequential':>14}")
    for n in (1, 2, 3):
        if (m - 2) < n * n:
            continue
        res = sor_parallel(m, n, tol=1e-6)
        err = float(np.max(np.abs(res.u - exact)))
        same = np.allclose(res.u, seq.u, atol=1e-10)
        print(
            f"{n * n:>6} {res.iterations:>6} "
            f"{res.elapsed / res.iterations:>11.4f} {err:>20.2e} "
            f"{'yes' if same else 'NO':>14}"
        )
        if not same:
            raise SystemExit("distributed iterates diverged — this is a bug")
    print(
        "\nComputation scales with subgrid area, halo traffic with its "
        "perimeter:\nbigger grids keep more processors busy (the paper's "
        "Figure 8)."
    )


if __name__ == "__main__":
    main()
