#!/usr/bin/env python3
"""Porting an MPI-style program to MPF (the paper's §4/§5 claim, redone).

The paper ported a hypercube PDE solver to MPF and reported "Porting
the hypercube program to MPF was very simple."  This example makes the
same point for the interface modern message-passing programs actually
use: an MPI-style computation of pi by numerical integration, with a
textbook ring allreduce written in rank-addressed, tag-matched
point-to-point operations (`repro.ext.mini_mpi.Comm`) — nothing but
LNVC circuits underneath — run on the simulated Balance 21000, and
cross-checked against the collective `allreduce`.

Run:  python examples/mpi_style.py
"""

import math
import struct

from repro import SimRuntime
from repro.ext.mini_mpi import Comm

N_RANKS = 8
INTERVALS = 4096

_F8 = struct.Struct("<d")


def worker(env):
    comm = Comm(env)
    yield from comm.connect()
    yield from comm.barrier()

    # Each rank integrates its strided share of 4/(1+x^2) on [0, 1].
    h = 1.0 / INTERVALS
    local = 0.0
    for i in range(comm.rank, INTERVALS, comm.size):
        x = h * (i + 0.5)
        local += 4.0 / (1.0 + x * x)
    local *= h
    yield from env.compute(flops=4 * (INTERVALS // comm.size))

    # Textbook ring allreduce: pass partial sums around the ring,
    # accumulating each token as it arrives.  Tags sequence the steps.
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    token, total = local, local
    for step in range(comm.size - 1):
        yield from comm.send(_F8.pack(token), dest=right, tag=step)
        msg = yield from comm.recv(source=left, tag=step)
        token = _F8.unpack(msg.data)[0]
        total += token
    pi_ring = total

    # The same reduction as a one-line collective, for comparison.
    acc = yield from comm.allreduce(
        _F8.pack(local),
        lambda a, b: _F8.pack(_F8.unpack(a)[0] + _F8.unpack(b)[0]),
    )
    pi_coll = _F8.unpack(acc)[0]

    yield from comm.barrier()
    yield from comm.close()
    return pi_ring, pi_coll


def main() -> None:
    result = SimRuntime().run([worker] * N_RANKS)
    rings = [v[0] for v in result.results.values()]
    colls = [v[1] for v in result.results.values()]
    print(f"{N_RANKS} ranks, {INTERVALS} intervals, over MPF circuits")
    print(f"pi (ring allreduce):       {rings[0]:.12f}")
    print(f"pi (collective allreduce): {colls[0]:.12f}")
    print(f"error vs math.pi:          {abs(rings[0] - math.pi):.2e}")
    print(f"simulated time:            {result.elapsed:.3f} s on the Balance 21000")
    assert all(abs(v - rings[0]) < 1e-12 for v in rings)
    assert all(abs(v - colls[0]) < 1e-12 for v in colls)
    assert abs(rings[0] - math.pi) < 1e-5


if __name__ == "__main__":
    main()
