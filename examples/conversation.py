#!/usr/bin/env python3
"""The conversation model of paper §1, literally.

    "Conversations, by analogy with everyday life, include dialogue,
    group discussions, and lectures."

Three acts on the simulated machine:

* a *dialogue* — two participants on a pair of circuits,
* a *group discussion* — everyone broadcasts to everyone, and
  participants join and leave mid-conversation,
* a *lecture* — one speaker, many BROADCAST listeners, with a
  latecomer who (faithfully to the model) only hears what is said
  after they join.

Run:  python examples/conversation.py
"""

from repro import BROADCAST, FCFS, SimRuntime


def dialogue() -> None:
    print("== dialogue ==")

    def alice(env):
        out = yield from env.open_send("to-bob")
        inn = yield from env.open_receive("to-alice", FCFS)
        yield from env.message_send(out, b"shall we trade sonnets?")
        reply = yield from env.message_receive(inn)
        print(f"  alice heard: {reply.decode()}")
        yield from env.close_send(out)
        yield from env.close_receive(inn)

    def bob(env):
        inn = yield from env.open_receive("to-bob", FCFS)
        heard = yield from env.message_receive(inn)
        print(f"  bob heard:   {heard.decode()}")
        out = yield from env.open_send("to-alice")
        yield from env.message_send(out, b"gladly; you first.")
        yield from env.close_send(out)
        yield from env.close_receive(inn)

    SimRuntime().run([alice, bob], names=["alice", "bob"])


def group_discussion() -> None:
    print("== group discussion ==")
    n = 3

    def member(env):
        # Everyone is both a sender and a BROADCAST receiver on one
        # circuit — bi-directional many-to-many, paper §1.
        inn = yield from env.open_receive("roundtable", BROADCAST)
        out = yield from env.open_send("roundtable")
        rsvp = yield from env.open_send("rsvp")
        yield from env.message_send(rsvp, b"here")
        yield from env.close_send(rsvp)
        if env.rank == 0:  # chair waits for everyone, then opens debate
            seats = yield from env.open_receive("rsvp", FCFS)
            for _ in range(n):
                yield from env.message_receive(seats)
            yield from env.close_receive(seats)
            yield from env.message_send(out, b"chair: the floor is open")
        opener = yield from env.message_receive(inn)
        yield from env.message_send(
            out, f"speaker {env.rank}: point {env.rank}!".encode()
        )
        heard = [opener]
        for _ in range(n):
            heard.append((yield from env.message_receive(inn)))
        yield from env.close_send(out)
        yield from env.close_receive(inn)
        return [h.decode() for h in heard]

    result = SimRuntime().run([member] * n)
    for name in sorted(result.results):
        print(f"  {name} heard {len(result.results[name])} remarks, "
              f"same order as everyone else")
    transcripts = list(result.results.values())
    assert all(t == transcripts[0] for t in transcripts)
    print(f"  shared transcript: {transcripts[0]}")


def lecture() -> None:
    print("== lecture ==")
    slides = [b"I. motivation", b"II. the LNVC model", b"III. results"]

    def lecturer(env):
        podium = yield from env.open_send("lecture")
        seats = yield from env.open_receive("attendance", FCFS)
        for _ in range(2):  # two punctual students
            yield from env.message_receive(seats)
        for slide in slides[:2]:
            yield from env.message_send(podium, slide)
        # The latecomer arrives mid-lecture...
        yield from env.message_receive(seats)
        yield from env.message_send(podium, slides[2])
        yield from env.close_send(podium)
        yield from env.close_receive(seats)

    def student(env, late):
        if late:
            yield from env.compute(flops=50_000)  # overslept
        ear = yield from env.open_receive("lecture", BROADCAST)
        hand = yield from env.open_send("attendance")
        yield from env.message_send(hand, b"present")
        expect = 1 if late else 3
        notes = []
        for _ in range(expect):
            notes.append((yield from env.message_receive(ear)))
        yield from env.close_send(hand)
        yield from env.close_receive(ear)
        return [x.decode() for x in notes]

    def punctual(env):
        return (yield from student(env, late=False))

    def latecomer(env):
        return (yield from student(env, late=True))

    result = SimRuntime().run(
        [lecturer, punctual, punctual, latecomer],
        names=["prof", "ann", "ben", "zoe"],
    )
    print(f"  ann's notes: {result.results['ann']}")
    print(f"  zoe (late) only got: {result.results['zoe']}")


if __name__ == "__main__":
    dialogue()
    print()
    group_discussion()
    print()
    lecture()
