#!/usr/bin/env python3
"""Quickstart: the MPF primitives on two runtimes.

Part 1 drives the blocking API (closest to the paper's C interface)
from plain threads; part 2 runs the identical logic as coroutines on
the simulated Sequent Balance 21000 and reports *simulated* time.

Run:  python examples/quickstart.py
"""

import threading

from repro import BROADCAST, FCFS, MPFConfig, MPFSystem, SimRuntime


def blocking_api_demo() -> None:
    """Producer/consumer/observer over one conversation, real threads."""
    print("== Part 1: blocking API on threads ==")
    system = MPFSystem(MPFConfig(max_lnvcs=8, max_processes=4))
    ready = threading.Barrier(4, timeout=30)

    def producer():
        mpf = system.client(0)
        cid = mpf.open_send("orders")
        ready.wait()  # everyone is connected before we speak
        for i in range(6):
            mpf.message_send(cid, f"order #{i}".encode())
        mpf.close_send(cid)

    def consumer(pid):
        # FCFS: the two consumers split the order stream between them.
        mpf = system.client(pid)
        cid = mpf.open_receive("orders", FCFS)
        ready.wait()
        got = []
        for _ in range(3):
            got.append(mpf.message_receive(cid).decode())
        print(f"  consumer {pid} handled: {got}")
        mpf.close_receive(cid)

    def observer():
        # BROADCAST: the observer sees *every* order.
        mpf = system.client(3)
        cid = mpf.open_receive("orders", BROADCAST)
        ready.wait()
        seen = [mpf.message_receive(cid).decode() for _ in range(6)]
        print(f"  observer saw all {len(seen)} orders, in order")
        mpf.close_receive(cid)

    threads = [
        threading.Thread(target=producer),
        threading.Thread(target=consumer, args=(1,)),
        threading.Thread(target=consumer, args=(2,)),
        threading.Thread(target=observer),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def simulator_demo() -> None:
    """The same pattern as coroutines on the simulated Balance 21000."""
    print("== Part 2: coroutine API on the simulated Balance 21000 ==")

    def producer(env):
        cid = yield from env.open_send("orders")
        rid = yield from env.open_receive("hello", FCFS)
        for _ in range(3):  # wait for all three receivers to join
            yield from env.message_receive(rid)
        for i in range(6):
            yield from env.message_send(cid, f"order #{i}".encode())
        yield from env.close_send(cid)
        yield from env.close_receive(rid)
        return "done"

    def make_receiver(protocol, count):
        def receiver(env):
            cid = yield from env.open_receive("orders", protocol)
            hello = yield from env.open_send("hello")
            yield from env.message_send(hello, b"hi")
            yield from env.close_send(hello)
            got = []
            for _ in range(count):
                got.append((yield from env.message_receive(cid)).decode())
            yield from env.close_receive(cid)
            return got

        return receiver

    result = SimRuntime().run(
        [
            producer,
            make_receiver(FCFS, 3),
            make_receiver(FCFS, 3),
            make_receiver(BROADCAST, 6),
        ],
        names=["producer", "worker-a", "worker-b", "observer"],
    )
    for name in ("worker-a", "worker-b", "observer"):
        print(f"  {name}: {result.results[name]}")
    print(f"  simulated time on the Balance 21000: {result.elapsed * 1e3:.2f} ms")
    print(f"  lock acquisitions: {result.report.lock_acquires}, "
          f"messages: {result.header['total_sends']}")


if __name__ == "__main__":
    blocking_api_demo()
    print()
    simulator_demo()
